package noc

import (
	"testing"

	"pimnet/internal/sim"
)

// TestSteadyStatePacketPathZeroAllocs is the allocation contract of the
// flat core: once the arenas (packet slots, event pool, queue rings, engine
// heap) have grown to a workload's high-water mark, injecting and fully
// draining a batch of packets — the complete inject/admit/serve/finish/
// forward/depart chain — allocates nothing.
func TestSteadyStatePacketPathZeroAllocs(t *testing.T) {
	cfg := DefaultConfig(2, 4, 8)
	n := cfg.Nodes()
	eng := sim.NewEngine()
	f := buildFabric(cfg)
	nw := newNetwork(eng, f, cfg)
	d := &trafDriver{latencies: make([]sim.Time, 0, 1024)}
	nw.traf = d

	cycle := func() {
		d.latencies = d.latencies[:0]
		t0 := eng.Now()
		for i := 0; i < 256; i++ {
			src := i % n
			dst := (src + 1 + i*7%(n-1)) % n
			if dst == src {
				dst = (dst + 1) % n
			}
			p := nw.allocPacket()
			off, plen := f.path(src, dst)
			pk := &nw.pkts[p]
			pk.bytes, pk.born, pk.pathOff, pk.pathLen = cfg.PacketBytes, t0, off, plen
			nw.inject(p, t0)
		}
		eng.Run()
	}

	cycle() // warm-up: grow every arena to its high-water mark once
	if avg := testing.AllocsPerRun(50, cycle); avg != 0 {
		t.Fatalf("steady-state packet path allocates %.1f times per cycle, want 0", avg)
	}
	if len(d.latencies) != 256 {
		t.Fatalf("cycle delivered %d packets, want 256", len(d.latencies))
	}
}

// TestSaturatedRunBoundedPeakHeap is the reslice-leak regression lock: the
// old implementation's q = q[1:] / waiters = waiters[1:] pattern pinned
// each queue's whole backing array for the run, so a long saturated run's
// heap grew with total traffic. In the flat core every arena is sized by
// concurrent occupancy: after a saturated all-to-all that delivers tens of
// thousands of packets, the packet arena, the event pool, and the queue
// rings must all be orders of magnitude smaller than the delivered count.
func TestSaturatedRunBoundedPeakHeap(t *testing.T) {
	cfg := DefaultConfig(2, 4, 8)
	n := cfg.Nodes()
	done := make([]sim.Time, n)
	// 1 MiB per node -> 16 KiB blocks -> 16 packets per message: deep
	// saturation of the crossbar ports and the bus for the whole run.
	nw, res, err := runScripts(cfg, CreditBased, done, allToAllScripts(n, 1<<20), false)
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketsDelivered < 50000 {
		t.Fatalf("run delivered only %d packets; not a saturating workload", res.PacketsDelivered)
	}

	// Live packets are bounded by in-flight messages (<= 1 per node) times
	// packets per message, not by the run length.
	if max := int32(n * 32); nw.pktPeak > max {
		t.Errorf("peak live packets %d exceeds occupancy bound %d", nw.pktPeak, max)
	}
	if got, peak := int32(len(nw.pkts)), nw.pktPeak; got != peak {
		t.Errorf("packet arena holds %d slots, want exactly the peak %d", got, peak)
	}
	if int64(nw.evMade) > res.PacketsDelivered/100 {
		t.Errorf("event pool made %d entries for %d deliveries; pooling is not recycling",
			nw.evMade, res.PacketsDelivered)
	}
	// Queue rings stay within a doubling of the configured buffer depth.
	for h := range nw.hops {
		if got := len(nw.hops[h].q); got > 8*cfg.BufferPackets {
			t.Errorf("hop %d ring grew to %d slots (buffer depth %d)", h, got, cfg.BufferPackets)
		}
	}
}
