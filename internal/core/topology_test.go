package core

import (
	"testing"
	"testing/quick"
)

func TestTopologyRoundTrip(t *testing.T) {
	topo := Topology{Ranks: 4, Chips: 8, Banks: 8}
	if topo.Nodes() != 256 {
		t.Fatalf("nodes = %d", topo.Nodes())
	}
	for id := NodeID(0); int(id) < topo.Nodes(); id++ {
		c := topo.Coord(id)
		if topo.ID(c) != id {
			t.Fatalf("roundtrip failed for node %d: coord %+v", id, c)
		}
	}
	// Spot checks of the packing order.
	if c := topo.Coord(0); c != (Coord{0, 0, 0}) {
		t.Fatalf("node 0 coord %+v", c)
	}
	if c := topo.Coord(8); c != (Coord{Rank: 0, Chip: 1, Bank: 0}) {
		t.Fatalf("node 8 coord %+v", c)
	}
	if c := topo.Coord(64); c != (Coord{Rank: 1, Chip: 0, Bank: 0}) {
		t.Fatalf("node 64 coord %+v", c)
	}
	if c := topo.Coord(255); c != (Coord{Rank: 3, Chip: 7, Bank: 7}) {
		t.Fatalf("node 255 coord %+v", c)
	}
}

func TestTopologyRoundTripProperty(t *testing.T) {
	f := func(r, c, b uint8, sel uint16) bool {
		topo := Topology{Ranks: int(r)%5 + 1, Chips: int(c)%9 + 1, Banks: int(b)%9 + 1}
		id := NodeID(int(sel) % topo.Nodes())
		return topo.ID(topo.Coord(id)) == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopologyPanics(t *testing.T) {
	topo := Topology{Ranks: 2, Chips: 2, Banks: 2}
	for _, fn := range []func(){
		func() { topo.Coord(8) },
		func() { topo.Coord(-1) },
		func() { topo.ID(Coord{Rank: 2}) },
		func() { topo.ID(Coord{Bank: -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSameChipSameRank(t *testing.T) {
	topo := Topology{Ranks: 2, Chips: 2, Banks: 2}
	if !topo.SameChip(0, 1) {
		t.Fatal("banks 0,1 share a chip")
	}
	if topo.SameChip(1, 2) {
		t.Fatal("nodes 1,2 are on different chips")
	}
	if !topo.SameRank(0, 3) {
		t.Fatal("nodes 0,3 share rank 0")
	}
	if topo.SameRank(3, 4) {
		t.Fatal("nodes 3,4 are on different ranks")
	}
	if topo.String() != "2x2x2" {
		t.Fatalf("String = %q", topo.String())
	}
}
