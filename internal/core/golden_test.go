package core

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pimnet/internal/collective"
	"pimnet/internal/config"
	"pimnet/internal/metrics"
)

// update regenerates the golden trace corpus:
//
//	go test ./internal/core -run TestGoldenTraces -update
var update = flag.Bool("update", false, "regenerate testdata/golden/*.json")

// goldenPhase is one compiled phase's identity and measured duration.
type goldenPhase struct {
	Name       string `json:"name"`
	Tier       string `json:"tier"`
	Steps      int    `json:"steps"`
	Pipelined  bool   `json:"pipelined,omitempty"`
	DurationPs int64  `json:"duration_ps"`
}

// goldenTrace pins one (pattern, population) cell of the corpus: the plan's
// content digest plus the phase-by-phase latency profile of its execution.
// Any change to the compiler or the executor that shifts a single transfer
// or picosecond shows up as a diff against these files.
type goldenTrace struct {
	Pattern      string           `json:"pattern"`
	DPUs         int              `json:"dpus"`
	BytesPerNode int64            `json:"bytes_per_node"`
	ElemSize     int              `json:"elem_size"`
	PlanDigest   string           `json:"plan_digest"`
	MemBytes     int64            `json:"mem_bytes,omitempty"`
	Phases       []goldenPhase    `json:"phases"`
	TotalPs      int64            `json:"total_ps"`
	BreakdownPs  map[string]int64 `json:"breakdown_ps"`
}

// goldenMatrix is the corpus: the four bandwidth-bound Table V collectives
// across one rank (64), the default hierarchy (256), and a multi-rank scale
// point (2560 DPUs = 40 ranks).
var goldenMatrix = struct {
	patterns []collective.Pattern
	dpus     []int
}{
	patterns: []collective.Pattern{collective.AllReduce, collective.AllGather,
		collective.ReduceScatter, collective.AllToAll},
	dpus: []int{64, 256, 2560},
}

func goldenFile(pat collective.Pattern, dpus int) string {
	name := strings.ToLower(strings.ReplaceAll(pat.String(), "-", ""))
	return filepath.Join("testdata", "golden", fmt.Sprintf("%s_%d.json", name, dpus))
}

// traceFor compiles and executes one corpus cell and returns its trace.
func traceFor(t *testing.T, pat collective.Pattern, dpus int) goldenTrace {
	t.Helper()
	sys, err := config.Default().WithDPUs(dpus)
	if err != nil {
		t.Fatalf("WithDPUs(%d): %v", dpus, err)
	}
	net, err := NewNetwork(sys)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	req := collective.Request{Pattern: pat, Op: collective.Sum,
		BytesPerNode: 32 << 10, ElemSize: 4, Nodes: dpus}
	plan, err := PlanFor(net, req)
	if err != nil {
		t.Fatalf("PlanFor(%v, %d): %v", pat, dpus, err)
	}
	digest, err := PlanDigest(plan, net)
	if err != nil {
		t.Fatalf("PlanDigest: %v", err)
	}
	res, durs, aborted, err := net.executePhases(plan, execOptions{})
	if err != nil {
		t.Fatalf("executePhases: %v", err)
	}
	if aborted != -1 {
		t.Fatalf("healthy execution aborted at phase %d", aborted)
	}
	tr := goldenTrace{
		Pattern:      pat.String(),
		DPUs:         dpus,
		BytesPerNode: req.BytesPerNode,
		ElemSize:     req.ElemSize,
		PlanDigest:   digest,
		MemBytes:     plan.MemBytes,
		TotalPs:      int64(res.Time),
		BreakdownPs:  map[string]int64{},
	}
	for i, ph := range plan.Phases {
		tr.Phases = append(tr.Phases, goldenPhase{
			Name:       ph.Name,
			Tier:       ph.Tier.String(),
			Steps:      len(ph.Steps),
			Pipelined:  ph.Pipelined,
			DurationPs: int64(durs[i]),
		})
	}
	for _, c := range metrics.Components() {
		if d := res.Breakdown.Get(c); d != 0 {
			tr.BreakdownPs[c.String()] = int64(d)
		}
	}
	return tr
}

// TestGoldenTraces locks the compiler and executor to the recorded corpus:
// same plan bytes (digest) and same phase-by-phase timing for every cell.
func TestGoldenTraces(t *testing.T) {
	for _, pat := range goldenMatrix.patterns {
		for _, dpus := range goldenMatrix.dpus {
			pat, dpus := pat, dpus
			t.Run(fmt.Sprintf("%v/%d", pat, dpus), func(t *testing.T) {
				got := traceFor(t, pat, dpus)
				path := goldenFile(pat, dpus)
				if *update {
					blob, err := json.MarshalIndent(got, "", "  ")
					if err != nil {
						t.Fatal(err)
					}
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				blob, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run with -update to generate): %v", err)
				}
				var want goldenTrace
				if err := json.Unmarshal(blob, &want); err != nil {
					t.Fatalf("corrupt golden file %s: %v", path, err)
				}
				if got.PlanDigest != want.PlanDigest {
					t.Errorf("plan digest drifted:\n got %s\nwant %s", got.PlanDigest, want.PlanDigest)
				}
				if !reflect.DeepEqual(got, want) {
					gotJSON, _ := json.MarshalIndent(got, "", "  ")
					t.Errorf("trace drifted from %s (rerun with -update if intended):\ngot:\n%s", path, gotJSON)
				}
			})
		}
	}
}

// TestGoldenDigestStability pins digest computation itself: the digest must
// be identical across two independently constructed networks (that is what
// makes it usable as a cross-run plan identity), and distinct cells must
// never share a digest.
func TestGoldenDigestStability(t *testing.T) {
	seen := map[string]string{}
	for _, pat := range goldenMatrix.patterns {
		for _, dpus := range goldenMatrix.dpus {
			var digests []string
			for i := 0; i < 2; i++ {
				sys, err := config.Default().WithDPUs(dpus)
				if err != nil {
					t.Fatal(err)
				}
				net, err := NewNetwork(sys)
				if err != nil {
					t.Fatal(err)
				}
				plan, err := PlanFor(net, collective.Request{Pattern: pat, Op: collective.Sum,
					BytesPerNode: 32 << 10, ElemSize: 4, Nodes: dpus})
				if err != nil {
					t.Fatal(err)
				}
				d, err := PlanDigest(plan, net)
				if err != nil {
					t.Fatal(err)
				}
				digests = append(digests, d)
			}
			if digests[0] != digests[1] {
				t.Errorf("%v/%d: digest not reproducible: %s vs %s", pat, dpus, digests[0], digests[1])
			}
			cell := fmt.Sprintf("%v/%d", pat, dpus)
			if prev, dup := seen[digests[0]]; dup {
				t.Errorf("digest collision between %s and %s", prev, cell)
			}
			seen[digests[0]] = cell
		}
	}
}
