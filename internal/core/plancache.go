package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync"

	"pimnet/internal/collective"
	"pimnet/internal/config"
	"pimnet/internal/sim"
)

// This file implements the compiled-plan cache. PIMnet's schedules are
// static: the same (system, request, step-overhead) tuple always compiles to
// the same plan, so sweeps that revisit a point — every weak-scaling study,
// every repeated workload iteration, every worker of a parallel sweep — can
// share one compilation instead of re-running the scheduler.
//
// A Plan references the *sim.Link objects of the Network it was compiled
// for, so plans cannot be shared across networks directly (each sweep worker
// owns its network, and links carry mutable reservation state). The cache
// therefore stores Blueprints: the same schedule with every link named by
// its coordinate in the topology instead of by pointer. Binding a blueprint
// to a network is a pure lookup pass — no chunk geometry, no contention
// analysis — which is what makes a cache hit cheap.
//
// Invalidation rule: the shared cache only ever serves and learns from
// pristine networks. Any hard fault, installed chip reordering, or
// degraded/failed link makes a network non-pristine; PlanVia then falls
// through to a direct compile, and recompiled (routed-around) plans stay in
// the per-backend recovery state (ftState.dplans), never in the shared
// cache. ClearFaults restores pristinity and with it cache eligibility.

// LinkRole classifies which resource array of a Network a LinkRef indexes.
type LinkRole uint8

// Link roles, in the order NewNetwork builds the arrays.
const (
	RefRing     LinkRole = iota // ringHop[rank][chip][index]
	RefChipSend                 // chipSend[rank][chip]
	RefChipRecv                 // chipRecv[rank][chip]
	RefBus                      // rankBus
)

// LinkRef names one network resource by coordinate instead of pointer, so a
// compiled schedule can be re-instantiated on any network of the same
// topology. Index is the bank for ring segments and unused otherwise.
type LinkRef struct {
	Role              LinkRole
	Rank, Chip, Index int
}

// BlueprintTransfer is one scheduled reservation in coordinate form. Dead
// transfers never appear in blueprints: blueprints are only extracted from
// plans compiled on pristine networks.
type BlueprintTransfer struct {
	Ref   LinkRef
	Kind  Kind
	Bytes int64
}

// BlueprintStep mirrors Step.
type BlueprintStep struct {
	Transfers          []BlueprintTransfer
	ReduceBytesPerNode int64
}

// BlueprintPhase mirrors Phase.
type BlueprintPhase struct {
	Name      string
	Tier      Tier
	Pipelined bool
	Steps     []BlueprintStep
}

// Blueprint is a network-independent compiled plan: the cacheable,
// digestible artifact the host would persist and re-upload.
type Blueprint struct {
	Req      collective.Request
	Topo     Topology
	MemBytes int64
	Phases   []BlueprintPhase
}

// BlueprintOf extracts the coordinate-form schedule from a plan compiled on
// n. It fails if any transfer references a link the network does not own or
// rides a dead route (both mean the plan is not a cacheable healthy plan).
func BlueprintOf(p *Plan, n *Network) (*Blueprint, error) {
	bp := &Blueprint{Req: p.Req, Topo: p.Topo, MemBytes: p.MemBytes}
	bp.Phases = make([]BlueprintPhase, len(p.Phases))
	for pi, ph := range p.Phases {
		bph := BlueprintPhase{Name: ph.Name, Tier: ph.Tier, Pipelined: ph.Pipelined}
		bph.Steps = make([]BlueprintStep, len(ph.Steps))
		for si, st := range ph.Steps {
			bst := BlueprintStep{ReduceBytesPerNode: st.ReduceBytesPerNode}
			bst.Transfers = make([]BlueprintTransfer, len(st.Transfers))
			for ti, tr := range st.Transfers {
				if tr.Dead {
					return nil, fmt.Errorf("core: phase %s step %d: dead transfer is not cacheable", ph.Name, si)
				}
				ref, ok := n.linkRef[tr.Link]
				if !ok {
					return nil, fmt.Errorf("core: phase %s step %d: transfer link %s not owned by network",
						ph.Name, si, tr.Link.Name())
				}
				bst.Transfers[ti] = BlueprintTransfer{Ref: ref, Kind: tr.Kind, Bytes: tr.Bytes}
			}
			bph.Steps[si] = bst
		}
		bp.Phases[pi] = bph
	}
	return bp, nil
}

// Bind instantiates the blueprint on a network of the same topology. The
// network must be pristine: Bind resolves coordinates to physical resources
// directly, without the fault-recompilation chip remap.
func (b *Blueprint) Bind(n *Network) (*Plan, error) {
	if n.Topo != b.Topo {
		return nil, fmt.Errorf("core: blueprint topology %v != network topology %v", b.Topo, n.Topo)
	}
	if !n.Pristine() {
		return nil, fmt.Errorf("core: cannot bind cached plan to a faulted network")
	}
	p := &Plan{Req: b.Req, Topo: b.Topo, MemBytes: b.MemBytes}
	p.Phases = make([]Phase, len(b.Phases))
	for pi, bph := range b.Phases {
		ph := Phase{Name: bph.Name, Tier: bph.Tier, Pipelined: bph.Pipelined}
		ph.Steps = make([]Step, len(bph.Steps))
		for si, bst := range bph.Steps {
			st := Step{ReduceBytesPerNode: bst.ReduceBytesPerNode}
			st.Transfers = make([]Transfer, len(bst.Transfers))
			for ti, btr := range bst.Transfers {
				l, err := n.resolveRef(btr.Ref)
				if err != nil {
					return nil, err
				}
				st.Transfers[ti] = Transfer{Link: l, Kind: btr.Kind, Bytes: btr.Bytes}
			}
			ph.Steps[si] = st
		}
		p.Phases[pi] = ph
	}
	// Blueprints are only ever extracted from plans that passed the
	// contention check, and binding maps coordinates to links one-to-one, so
	// the bound plan inherits the verification.
	p.verified = true
	return p, nil
}

// Digest returns a hex SHA-256 over the canonical binary encoding of the
// blueprint — the identity of the compiled artifact. The golden-trace
// corpus pins these digests; any change to the compiler's output changes
// them and must be an intentional, reviewed regeneration.
func (b *Blueprint) Digest() string {
	h := sha256.New()
	w := func(vs ...int64) {
		for _, v := range vs {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
		}
	}
	w(int64(b.Req.Pattern), int64(b.Req.Op), b.Req.BytesPerNode,
		int64(b.Req.ElemSize), int64(b.Req.Nodes), int64(b.Req.Root))
	w(int64(b.Topo.Ranks), int64(b.Topo.Chips), int64(b.Topo.Banks), b.MemBytes)
	w(int64(len(b.Phases)))
	for _, ph := range b.Phases {
		w(int64(len(ph.Name)))
		h.Write([]byte(ph.Name))
		pipe := int64(0)
		if ph.Pipelined {
			pipe = 1
		}
		w(int64(ph.Tier), pipe, int64(len(ph.Steps)))
		for _, st := range ph.Steps {
			w(st.ReduceBytesPerNode, int64(len(st.Transfers)))
			for _, tr := range st.Transfers {
				w(int64(tr.Ref.Role), int64(tr.Ref.Rank), int64(tr.Ref.Chip),
					int64(tr.Ref.Index), int64(tr.Kind), tr.Bytes)
			}
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// PlanDigest compiles nothing: it extracts and digests the blueprint of an
// already-compiled plan (diagnostics; the golden-trace corpus).
func PlanDigest(p *Plan, n *Network) (string, error) {
	bp, err := BlueprintOf(p, n)
	if err != nil {
		return "", err
	}
	return bp.Digest(), nil
}

// PlanKey identifies one compilation point. config.System and
// collective.Request contain only scalar fields, so the struct is comparable
// and two keys are equal exactly when every parameter that can influence the
// compiled schedule is equal — the language's map semantics guarantee
// collision-freedom (locked in by FuzzPlanCacheKey).
type PlanKey struct {
	Sys            config.System
	Req            collective.Request
	StepOverheadPs int64
}

// KeyFor returns the cache key for compiling req on n as configured.
func KeyFor(n *Network, req collective.Request) PlanKey {
	return PlanKey{Sys: n.Sys, Req: req, StepOverheadPs: n.stepOverheadPs}
}

// KeyForSystem returns the cache key a network built from sys with the given
// step overhead would produce for req, without constructing the network.
// This is the serving tier's request identity: two requests with equal keys
// compile to the same blueprint, so a server can coalesce them onto one
// execution before any simulation state exists. It must stay consistent with
// KeyFor (locked in by TestKeyForSystemMatchesKeyFor).
func KeyForSystem(sys config.System, req collective.Request, stepOverheadPs int64) PlanKey {
	return PlanKey{Sys: sys, Req: req, StepOverheadPs: stepOverheadPs}
}

// Digest returns a hex SHA-256 over the key's canonical JSON encoding — a
// stable string form of the compilation point for logs, coalescing maps, and
// response bodies. PlanKey contains only scalar fields, so the encoding
// cannot fail and two equal keys always digest identically.
func (k PlanKey) Digest() string {
	b, err := json.Marshal(k)
	if err != nil {
		panic(fmt.Sprintf("core: plan key not encodable: %v", err))
	}
	return fmt.Sprintf("%x", sha256.Sum256(b))
}

// CacheStats is a point-in-time snapshot of cache effectiveness counters.
// Misses count true compiles: a lookup satisfied by the persistence layer is
// a DiskHit, not a miss — after a warm restart a fully persisted workload
// runs with Misses == 0.
type CacheStats struct {
	Hits, Misses uint64
	// DiskHits counts lookups that missed memory but were satisfied by the
	// attached BlueprintStore (zero when none is attached).
	DiskHits uint64
	Entries  int
}

// Sub returns the delta s - prev (for windowed measurements around a sweep).
func (s CacheStats) Sub(prev CacheStats) CacheStats {
	return CacheStats{Hits: s.Hits - prev.Hits, Misses: s.Misses - prev.Misses,
		DiskHits: s.DiskHits - prev.DiskHits, Entries: s.Entries}
}

// BlueprintStore is the optional persistence layer under a PlanCache: a
// durable keyed blueprint store consulted on memory misses (read-through)
// and fed on fills (write-behind). Implementations must be safe for
// concurrent use and strictly best-effort — a load may always report false
// and a store may silently drop, but a load that reports true must return
// exactly the blueprint that was stored under k (internal/store enforces
// this with blob checksums plus the self-verifying blueprint envelope).
type BlueprintStore interface {
	LoadBlueprint(k PlanKey) (*Blueprint, bool)
	StoreBlueprint(k PlanKey, bp *Blueprint)
}

// PlanCache is a concurrency-safe keyed store of compiled-plan blueprints,
// shared by all workers of a sweep.
type PlanCache struct {
	mu       sync.Mutex
	plans    map[PlanKey]*Blueprint
	persist  BlueprintStore
	hits     uint64
	misses   uint64
	diskHits uint64
}

// NewPlanCache returns an empty cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{plans: make(map[PlanKey]*Blueprint)}
}

// SetPersistence attaches (or, with nil, detaches) the durable blueprint
// store under the cache. Safe to call while the cache is in use; entries
// already in memory are unaffected.
func (c *PlanCache) SetPersistence(p BlueprintStore) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.persist = p
}

// Lookup returns the blueprint cached under k. Memory misses read through
// the attached persistence layer (counted as DiskHits and promoted into
// memory); only a miss at both layers counts as a Miss — the signal that a
// compile is about to happen.
func (c *PlanCache) Lookup(k PlanKey) (*Blueprint, bool) {
	c.mu.Lock()
	if bp, ok := c.plans[k]; ok {
		c.hits++
		c.mu.Unlock()
		return bp, true
	}
	p := c.persist
	c.mu.Unlock()

	if p != nil {
		// Disk I/O happens outside the lock so concurrent sweep workers do
		// not serialize on it. Two goroutines may both load the same key;
		// blueprints are immutable, so keeping the first promoted instance
		// is merely a de-dup, not a correctness need.
		if bp, ok := p.LoadBlueprint(k); ok {
			c.mu.Lock()
			if cur, dup := c.plans[k]; dup {
				bp = cur
			} else {
				c.plans[k] = bp
			}
			c.diskHits++
			c.mu.Unlock()
			return bp, true
		}
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// Insert stores bp under k. Blueprints are immutable after insertion; both
// the cache and every binder share the same instance. With persistence
// attached the fill is written behind to the durable store as well (the
// pristine-only rule is upstream: only blueprints extracted from pristine
// networks ever reach Insert).
func (c *PlanCache) Insert(k PlanKey, bp *Blueprint) {
	c.mu.Lock()
	c.plans[k] = bp
	p := c.persist
	c.mu.Unlock()
	if p != nil {
		p.StoreBlueprint(k, bp)
	}
}

// Stats snapshots the effectiveness counters.
func (c *PlanCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, DiskHits: c.diskHits, Entries: len(c.plans)}
}

// Reset drops every in-memory entry and zeroes the counters. The attached
// persistence layer (if any) keeps its entries — Reset models a restart,
// which is exactly what persistence exists to survive.
func (c *PlanCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.plans = make(map[PlanKey]*Blueprint)
	c.hits, c.misses, c.diskHits = 0, 0, 0
}

// PlanVia compiles req for n through the cache. A nil cache or a
// non-pristine network falls through to a direct PlanFor — the cache never
// observes fault state in either direction, which is the whole invalidation
// story: fault recompilation happens outside it, and ClearFaults restores
// eligibility.
func PlanVia(c *PlanCache, n *Network, req collective.Request) (*Plan, error) {
	if c == nil || !n.Pristine() {
		return PlanFor(n, req)
	}
	k := KeyFor(n, req)
	if bp, ok := c.Lookup(k); ok {
		return bp.Bind(n)
	}
	p, err := PlanFor(n, req)
	if err != nil {
		return nil, err
	}
	bp, err := BlueprintOf(p, n)
	if err != nil {
		return nil, err
	}
	c.Insert(k, bp)
	return p, nil
}

// resolveRef maps a coordinate back to the physical link, bounds-checked so
// a blueprint from a mismatched topology cannot index out of range.
func (n *Network) resolveRef(ref LinkRef) (*sim.Link, error) {
	switch ref.Role {
	case RefBus:
		return n.rankBus, nil
	case RefRing:
		if ref.Rank < 0 || ref.Rank >= n.Topo.Ranks || ref.Chip < 0 || ref.Chip >= n.Topo.Chips ||
			ref.Index < 0 || ref.Index >= n.Topo.Banks {
			return nil, fmt.Errorf("core: ring ref %+v outside topology %v", ref, n.Topo)
		}
		return n.ringHop[ref.Rank][ref.Chip][ref.Index], nil
	case RefChipSend, RefChipRecv:
		if ref.Rank < 0 || ref.Rank >= n.Topo.Ranks || ref.Chip < 0 || ref.Chip >= n.Topo.Chips {
			return nil, fmt.Errorf("core: chip ref %+v outside topology %v", ref, n.Topo)
		}
		if ref.Role == RefChipSend {
			return n.chipSend[ref.Rank][ref.Chip], nil
		}
		return n.chipRecv[ref.Rank][ref.Chip], nil
	default:
		return nil, fmt.Errorf("core: unknown link role %d", ref.Role)
	}
}

// Pristine reports whether the network is in its as-built state: no stuck
// crossbar pairings, no recompiled chip ordering, and every link healthy.
// Only pristine networks may serve or populate the shared plan cache.
func (n *Network) Pristine() bool {
	if len(n.deadPath) > 0 || n.chipOrder != nil {
		return false
	}
	for _, rank := range n.ringHop {
		for _, chip := range rank {
			for _, l := range chip {
				if l.Faulty() {
					return false
				}
			}
		}
	}
	for r := range n.chipSend {
		for c := range n.chipSend[r] {
			if n.chipSend[r][c].Faulty() || n.chipRecv[r][c].Faulty() {
				return false
			}
		}
	}
	return !n.rankBus.Faulty()
}
