package core

import (
	"testing"

	"pimnet/internal/collective"
)

// The Execute benchmarks measure the replay hot path alone: the plan is
// compiled once and re-executed, which is exactly what a sweep point does
// after a warm cache bind. They are part of the regression-gated suite
// (make benchcmp): BENCH_baseline.json pins their latency and allocs/op.

func benchExecute(b *testing.B, pat collective.Pattern, dpus int) {
	b.Helper()
	n := testNet(b, dpus)
	plan, err := PlanFor(n, testReq(pat, dpus, 32<<10))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := n.Execute(plan); err != nil { // warm the scratch buffers
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Execute(plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteAllReduce256(b *testing.B) {
	benchExecute(b, collective.AllReduce, 256)
}

func BenchmarkExecuteAllToAll256(b *testing.B) {
	benchExecute(b, collective.AllToAll, 256)
}

func BenchmarkExecuteAllReduce2560(b *testing.B) {
	benchExecute(b, collective.AllReduce, 2560)
}

func BenchmarkExecuteAllToAll2560(b *testing.B) {
	benchExecute(b, collective.AllToAll, 2560)
}

// TestExecuteSteadyStateZeroAllocs is the executor's allocation contract:
// after one warm-up replay has sized the network's execScratch, Execute
// allocates nothing — the property the benchcmp gate keeps from regressing.
func TestExecuteSteadyStateZeroAllocs(t *testing.T) {
	for _, pat := range []collective.Pattern{collective.AllReduce, collective.AllToAll} {
		n := testNet(t, 256)
		plan, err := PlanFor(n, testReq(pat, 256, 32<<10))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Execute(plan); err != nil { // warm-up sizes the scratch
			t.Fatal(err)
		}
		avg := testing.AllocsPerRun(20, func() {
			if _, err := n.Execute(plan); err != nil {
				t.Fatal(err)
			}
		})
		if avg != 0 {
			t.Fatalf("%v: steady-state Execute allocates %.1f times, want 0", pat, avg)
		}
	}
}
