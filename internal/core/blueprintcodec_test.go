package core

import (
	"bytes"
	"testing"

	"pimnet/internal/collective"
)

// testBlueprint compiles a real plan and lifts it into a blueprint.
func testBlueprint(t *testing.T, dpus int) (*Blueprint, PlanKey) {
	t.Helper()
	n := testNet(t, dpus)
	req := testReq(collective.AllReduce, dpus, 32<<10)
	plan, err := PlanFor(n, req)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := BlueprintOf(plan, n)
	if err != nil {
		t.Fatal(err)
	}
	return bp, KeyFor(n, req)
}

// TestBlueprintCodecRoundTrip: encode -> decode preserves the compiled
// artifact exactly — same digest, bindable, executes identically to the
// original — and re-encoding is byte-deterministic (the property
// FuzzStoreRoundTrip relies on from the store side).
func TestBlueprintCodecRoundTrip(t *testing.T) {
	bp, _ := testBlueprint(t, 256)
	data, err := EncodeBlueprint(bp)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBlueprint(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Digest() != bp.Digest() {
		t.Fatalf("digest changed across codec: %s vs %s", back.Digest(), bp.Digest())
	}
	again, err := EncodeBlueprint(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, data) {
		t.Fatal("encode -> decode -> encode is not byte-identical")
	}

	// The decoded artifact is a working plan, not just matching hashes.
	n := testNet(t, 256)
	plan, err := back.Bind(n)
	if err != nil {
		t.Fatalf("decoded blueprint does not bind: %v", err)
	}
	r1, err := n.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	n2 := testNet(t, 256)
	orig, err := bp.Bind(n2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := n2.Execute(orig)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Time != r2.Time || r1.Breakdown != r2.Breakdown {
		t.Fatalf("decoded blueprint executed differently: %v vs %v", r1, r2)
	}
}

// TestBlueprintCodecRejects: every malformed envelope shape errors — and
// never panics, never returns a blueprint that is not the encoded one.
func TestBlueprintCodecRejects(t *testing.T) {
	bp, _ := testBlueprint(t, 64)
	good, err := EncodeBlueprint(bp)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"not json":          []byte("certainly { not json"),
		"empty":             {},
		"no blueprint":      []byte(`{"digest": "abc"}`),
		"null blueprint":    []byte(`{"digest": "abc", "blueprint": null}`),
		"truncated":         good[:len(good)/2],
		"tampered digest":   bytes.Replace(good, []byte(bp.Digest()[:16]), []byte("0123456789abcdef"), 1),
		"tampered schedule": bytes.Replace(good, []byte(`"MemBytes":`), []byte(`"MemBytes":1`), 1),
	}
	for name, data := range cases {
		if got, err := DecodeBlueprint(data); err == nil {
			t.Errorf("%s: decoded to %v, want error", name, got)
		}
	}

	if _, err := EncodeBlueprint(nil); err == nil {
		t.Error("EncodeBlueprint(nil) succeeded")
	}
}

// memStore is an in-memory BlueprintStore that records traffic — the test
// double for the persistence hook.
type memStore struct {
	m      map[PlanKey][]byte
	loads  int
	stores int
	// corruptAll makes every stored payload undecodable, modeling a store
	// whose blobs survived but whose codec drifted.
	corruptAll bool
}

func newMemStore() *memStore { return &memStore{m: make(map[PlanKey][]byte)} }

func (p *memStore) LoadBlueprint(k PlanKey) (*Blueprint, bool) {
	p.loads++
	data, ok := p.m[k]
	if !ok {
		return nil, false
	}
	bp, err := DecodeBlueprint(data)
	if err != nil {
		return nil, false
	}
	return bp, true
}

func (p *memStore) StoreBlueprint(k PlanKey, bp *Blueprint) {
	p.stores++
	data, err := EncodeBlueprint(bp)
	if err != nil {
		return
	}
	if p.corruptAll {
		data = []byte("x" + string(data))
	}
	p.m[k] = data
}

// TestPlanCachePersistenceReadThrough: a fresh cache over a warm
// persistence layer serves lookups as DiskHits with zero Misses — the
// warm-restart contract at the cache layer — and promotes the loaded
// blueprint so the second lookup is a pure memory hit.
func TestPlanCachePersistenceReadThrough(t *testing.T) {
	bp, k := testBlueprint(t, 64)
	p := newMemStore()
	p.StoreBlueprint(k, bp)
	p.stores = 0

	c := NewPlanCache()
	c.SetPersistence(p)
	got, ok := c.Lookup(k)
	if !ok {
		t.Fatal("warm persistence layer missed")
	}
	if got.Digest() != bp.Digest() {
		t.Fatalf("persisted lookup changed the blueprint: %s vs %s", got.Digest(), bp.Digest())
	}
	if st := c.Stats(); st.Misses != 0 || st.DiskHits != 1 || st.Hits != 0 {
		t.Fatalf("after disk hit: %+v", st)
	}
	if _, ok := c.Lookup(k); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := c.Stats(); st.Hits != 1 || st.DiskHits != 1 || p.loads != 1 {
		t.Fatalf("promotion did not stick: %+v, loads %d", st, p.loads)
	}
}

// TestPlanCachePersistenceWriteBehind: Insert feeds the persistence layer,
// and a second cache over the same layer starts warm — while Reset (the
// in-process restart) keeps the durable entries by design.
func TestPlanCachePersistenceWriteBehind(t *testing.T) {
	bp, k := testBlueprint(t, 64)
	p := newMemStore()
	c := NewPlanCache()
	c.SetPersistence(p)
	c.Insert(k, bp)
	if p.stores != 1 {
		t.Fatalf("stores = %d, want 1", p.stores)
	}

	c2 := NewPlanCache()
	c2.SetPersistence(p)
	if _, ok := c2.Lookup(k); !ok {
		t.Fatal("second cache over the same layer is cold")
	}

	c.Reset()
	if _, ok := c.Lookup(k); !ok {
		t.Fatal("Reset dropped the durable entry")
	}
	if st := c.Stats(); st.Misses != 0 || st.DiskHits != 1 {
		t.Fatalf("post-Reset lookup: %+v", st)
	}
}

// TestPlanCachePersistenceMissAndDetach: a cold layer is a plain Miss; a
// detached cache never consults the layer again.
func TestPlanCachePersistenceMissAndDetach(t *testing.T) {
	_, k := testBlueprint(t, 64)
	p := newMemStore()
	c := NewPlanCache()
	c.SetPersistence(p)
	if _, ok := c.Lookup(k); ok {
		t.Fatal("cold everything reported a hit")
	}
	if st := c.Stats(); st.Misses != 1 || st.DiskHits != 0 {
		t.Fatalf("cold lookup: %+v", st)
	}

	c.SetPersistence(nil)
	c.Lookup(k)
	if p.loads != 1 {
		t.Fatalf("detached cache still consulted the layer: loads = %d", p.loads)
	}
}

// TestPlanViaWithPersistence is the end-to-end cache-layer warm restart:
// compile once through PlanVia, then a brand-new cache over the same layer
// must serve the same schedule with zero compiles (Misses == 0) and execute
// identically.
func TestPlanViaWithPersistence(t *testing.T) {
	p := newMemStore()
	c := NewPlanCache()
	c.SetPersistence(p)
	n := testNet(t, 256)
	req := testReq(collective.AllGather, 256, 16<<10)
	plan1, err := PlanVia(c, n, req)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 1 || p.stores != 1 {
		t.Fatalf("cold compile: %+v, stores %d", st, p.stores)
	}

	warm := NewPlanCache() // the restarted process
	warm.SetPersistence(p)
	n2 := testNet(t, 256)
	plan2, err := PlanVia(warm, n2, req)
	if err != nil {
		t.Fatal(err)
	}
	if st := warm.Stats(); st.Misses != 0 || st.DiskHits != 1 {
		t.Fatalf("warm restart still compiled: %+v", st)
	}
	r1, err := n.Execute(plan1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := n2.Execute(plan2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Time != r2.Time || r1.Breakdown != r2.Breakdown {
		t.Fatalf("restored plan executed differently: %v vs %v", r1, r2)
	}
}

// TestPlanCachePersistenceSurvivesCorruptLayer: a layer whose payloads no
// longer decode degrades to recompute — lookups miss, PlanVia compiles,
// nothing panics, nothing wrong is served.
func TestPlanCachePersistenceSurvivesCorruptLayer(t *testing.T) {
	p := newMemStore()
	p.corruptAll = true
	c := NewPlanCache()
	c.SetPersistence(p)
	n := testNet(t, 64)
	req := testReq(collective.ReduceScatter, 64, 4<<10)
	if _, err := PlanVia(c, n, req); err != nil {
		t.Fatal(err)
	}

	fresh := NewPlanCache()
	fresh.SetPersistence(p)
	n2 := testNet(t, 64)
	if _, err := PlanVia(fresh, n2, req); err != nil {
		t.Fatal(err)
	}
	if st := fresh.Stats(); st.DiskHits != 0 || st.Misses != 1 {
		t.Fatalf("corrupt layer produced a disk hit: %+v", st)
	}
}

// TestCacheStatsSubIncludesDiskHits: the windowed delta arithmetic the
// sweep engine uses must cover the new counter.
func TestCacheStatsSubIncludesDiskHits(t *testing.T) {
	a := CacheStats{Hits: 10, Misses: 4, DiskHits: 6, Entries: 3}
	b := CacheStats{Hits: 4, Misses: 1, DiskHits: 2, Entries: 2}
	d := a.Sub(b)
	if d.Hits != 6 || d.Misses != 3 || d.DiskHits != 4 || d.Entries != 3 {
		t.Fatalf("Sub = %+v", d)
	}
}
