package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pimnet/internal/collective"
	"pimnet/internal/sim"
	"pimnet/internal/trace"
)

// TestTraceMatchesBreakdown is the reconciliation contract between the two
// observability surfaces: for every tier, the wall-clock the trace's
// aggregator accumulates from phase spans must equal what the Breakdown
// charges to that tier's component — exactly, because both read the same
// phase durations.
func TestTraceMatchesBreakdown(t *testing.T) {
	for _, pat := range []collective.Pattern{
		collective.AllReduce, collective.ReduceScatter, collective.AllToAll,
	} {
		n := testNet(t, 256)
		util := trace.NewUtil()
		n.SetTracer(util, trace.LevelLink)
		plan, err := PlanFor(n, testReq(pat, 256, 32<<10))
		if err != nil {
			t.Fatalf("%v: %v", pat, err)
		}
		res, err := n.Execute(plan)
		if err != nil {
			t.Fatalf("%v: %v", pat, err)
		}
		s := n.UtilSummary()
		if s == nil {
			t.Fatalf("%v: traced network returned nil utilization summary", pat)
		}
		if sim.Time(s.HorizonPs) != res.Time {
			t.Errorf("%v: trace horizon %v != end-to-end latency %v",
				pat, sim.Time(s.HorizonPs), res.Time)
		}
		for _, tu := range s.Tiers {
			want := res.Breakdown.Get(Tier(tu.Tier).Component())
			if sim.Time(tu.PhaseBusyPs) != want {
				t.Errorf("%v: %v phase busy time %v != breakdown component %v",
					pat, tu.Tier, sim.Time(tu.PhaseBusyPs), want)
			}
		}
	}
}

// TestChromeTraceGolden pins the full Chrome export of a link-level traced
// 64-DPU AllReduce. Any change to the executor's emission order, the track
// layout, or the JSON rendering shows up as a diff here; regenerate with
//
//	go test ./internal/core -run TestChromeTraceGolden -update
func TestChromeTraceGolden(t *testing.T) {
	n := testNet(t, 64)
	chrome := trace.NewChrome()
	n.SetTracer(chrome, trace.LevelLink)
	plan, err := PlanFor(n, testReq(collective.AllReduce, 64, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Execute(plan); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := chrome.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("export fails the Chrome validator: %v", err)
	}
	golden := filepath.Join("testdata", "chrome_allreduce64.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace drifted from %s; rerun with -update and review the diff", golden)
	}
}

// TestNilTracerZeroAllocs pins the nil-tracer contract at both evaluated
// scales: with no tracer attached, the trace guards must not add a single
// allocation to the steady-state replay path.
func TestNilTracerZeroAllocs(t *testing.T) {
	for _, dpus := range []int{256, 2560} {
		n := testNet(t, dpus)
		n.SetTracer(nil, trace.LevelLink)
		plan, err := PlanFor(n, testReq(collective.AllReduce, dpus, 32<<10))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Execute(plan); err != nil { // warm-up sizes the scratch
			t.Fatal(err)
		}
		avg := testing.AllocsPerRun(10, func() {
			if _, err := n.Execute(plan); err != nil {
				t.Fatal(err)
			}
		})
		if avg != 0 {
			t.Fatalf("%d DPUs: Execute with nil tracer allocates %.1f times, want 0", dpus, avg)
		}
	}
}

// TestTraceLevelPhase suppresses per-transfer link events but keeps the
// phase spans the aggregators and the Breakdown reconciliation need.
func TestTraceLevelPhase(t *testing.T) {
	n := testNet(t, 64)
	rec := trace.NewRecorder(0)
	n.SetTracer(rec, trace.LevelPhase)
	plan, err := PlanFor(n, testReq(collective.AllReduce, 64, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Execute(plan); err != nil {
		t.Fatal(err)
	}
	var links, phases int
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case trace.KindLinkBusy:
			links++
		case trace.KindPhaseEnd:
			phases++
		}
	}
	if links != 0 {
		t.Errorf("LevelPhase emitted %d link events, want 0", links)
	}
	if phases == 0 {
		t.Error("LevelPhase emitted no phase spans")
	}
}

// TestTracedExecutionDeterministic: tracing must observe, not perturb — a
// traced run and an untraced run of the same plan produce identical results,
// and two traced runs produce identical event streams.
func TestTracedExecutionDeterministic(t *testing.T) {
	bare := testNet(t, 256)
	plan, err := PlanFor(bare, testReq(collective.AllToAll, 256, 32<<10))
	if err != nil {
		t.Fatal(err)
	}
	want, err := bare.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}

	run := func() ([]trace.Event, sim.Time) {
		n := testNet(t, 256)
		rec := trace.NewRecorder(1 << 16)
		n.SetTracer(rec, trace.LevelLink)
		p, err := PlanFor(n, testReq(collective.AllToAll, 256, 32<<10))
		if err != nil {
			t.Fatal(err)
		}
		res, err := n.Execute(p)
		if err != nil {
			t.Fatal(err)
		}
		return rec.Events(), res.Time
	}
	ev1, t1 := run()
	ev2, t2 := run()
	if t1 != want.Time || t2 != want.Time {
		t.Fatalf("traced latencies %v/%v differ from untraced %v", t1, t2, want.Time)
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("event counts differ: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, ev1[i], ev2[i])
		}
	}
}
