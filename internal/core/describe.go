package core

import (
	"fmt"
	"strings"

	"pimnet/internal/collective"
)

// Describe renders the compiled schedule in a human-readable form: the
// artifact the host would upload to the control units (Fig. 5c/d). It lists
// every phase with its tier, step count, per-step transfer count, and byte
// volume, plus the staging requirement.
func (p *Plan) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan %v on %v (%d DPUs)\n", p.Req, p.Topo, p.Topo.Nodes())
	if p.MemBytes > 0 {
		fmt.Fprintf(&sb, "  MRAM<->WRAM staging: %d bytes per DPU\n", p.MemBytes)
	}
	for i, ph := range p.Phases {
		var bytes int64
		var transfers int
		for _, st := range ph.Steps {
			transfers += len(st.Transfers)
			for _, tr := range st.Transfers {
				bytes += tr.Bytes
			}
		}
		mode := "lock-step"
		if ph.Pipelined {
			mode = "pipelined"
		}
		fmt.Fprintf(&sb, "  phase %d %-18s tier=%-10s steps=%-4d transfers=%-6d bytes=%-10d %s\n",
			i, ph.Name, ph.Tier, len(ph.Steps), transfers, bytes, mode)
	}
	return sb.String()
}

// VolumeSummary aggregates scheduled bytes per tier — the quantity the
// analytic checks compare against closed-form collective volumes.
type VolumeSummary struct {
	Bank, Chip, Rank int64
}

// Volumes returns the per-tier scheduled byte volumes. Chip counts only the
// crossbar send ports (receive ports mirror them); Rank counts bus bytes.
func (p *Plan) Volumes() VolumeSummary {
	var v VolumeSummary
	for _, ph := range p.Phases {
		for _, st := range ph.Steps {
			for _, tr := range st.Transfers {
				switch {
				case tr.Kind == KindBus:
					v.Rank += tr.Bytes
				case tr.Kind == KindRing:
					v.Bank += tr.Bytes
				case strings.HasPrefix(tr.Link.Name(), "dq-send"):
					v.Chip += tr.Bytes
				}
			}
		}
	}
	return v
}

// ExpectedVolumes returns the closed-form per-tier byte volumes of the
// Table V schedules for the supported patterns, used to cross-check the
// compiler. Formulas (D = payload per node, b/c/r = banks/chips/ranks,
// P = b*c*r):
//
//	AllReduce:     bank 2*P*D*(b-1)/b, chip 2*r*c*D*(c-1)/c, rank r*D
//	ReduceScatter: half the AllReduce bank/chip volumes, same rank volume
//	AllToAll:      rank P*D*(r-1)/r (bank/chip volumes depend on hop counts)
func ExpectedVolumes(topo Topology, req collective.Request) (VolumeSummary, bool) {
	D := req.BytesPerNode
	b, c, r := int64(topo.Banks), int64(topo.Chips), int64(topo.Ranks)
	P := b * c * r
	switch req.Pattern {
	case collective.AllReduce:
		v := VolumeSummary{}
		if b > 1 {
			// Exact chunk geometry: per-node ring traffic for RS then AG.
			v.Bank = 2 * P * collective.RSTrafficPerNode(D, int(b))
		}
		if c > 1 {
			// Each chip ships (c-1)/c of its banks' owned chunks, twice.
			var perChip int64
			for bank := 0; bank < int(b); bank++ {
				owned := chunkBytes(D, int(b), collective.OwnedAfterRS(int(b), bank))
				perChip += collective.RSTrafficPerNode(owned, int(c))
			}
			v.Chip = 2 * r * c * perChip
		}
		if r > 1 {
			v.Rank = r * D
		}
		return v, true
	case collective.ReduceScatter:
		full, _ := ExpectedVolumes(topo, collective.Request{
			Pattern: collective.AllReduce, Op: req.Op,
			BytesPerNode: D, ElemSize: req.ElemSize, Nodes: req.Nodes})
		return VolumeSummary{Bank: full.Bank / 2, Chip: full.Chip / 2, Rank: full.Rank}, true
	case collective.AllToAll:
		v := VolumeSummary{}
		if r > 1 {
			// Exact cross-rank volume from balanced destination blocks.
			var cross int64
			for dst := 0; dst < int(P); dst++ {
				blk := chunkBytes(D, int(P), dst)
				// Each destination block is sent by every node in a
				// different rank than the destination: (r-1)*b*c sources.
				cross += blk * (r - 1) * b * c
			}
			v.Rank = cross
		}
		return v, true
	default:
		return VolumeSummary{}, false
	}
}
