// Package core implements the paper's contribution: the PIMnet multi-tier
// interconnect. It models the three network tiers (inter-bank ring,
// inter-chip crossbar, inter-rank bus), compiles collective requests into
// statically scheduled, contention-checked transfer plans (Table V), and
// generates the per-bank addresses and timing offsets of the paper's
// Algorithm 1. The executor charges every transfer against the shared
// tier resources, producing the latency breakdowns the evaluation reports.
package core

import "fmt"

// NodeID is a flat DPU index within one memory channel:
// ((rank*chips)+chip)*banks + bank.
type NodeID int

// Coord locates a PIM bank in the packaging hierarchy.
type Coord struct {
	Rank, Chip, Bank int
}

// Topology is the packaging hierarchy of one memory channel.
type Topology struct {
	Ranks, Chips, Banks int
}

// Nodes returns the DPU count.
func (t Topology) Nodes() int { return t.Ranks * t.Chips * t.Banks }

// Valid reports whether all dimensions are positive.
func (t Topology) Valid() bool { return t.Ranks >= 1 && t.Chips >= 1 && t.Banks >= 1 }

// ID maps a coordinate to its flat node index.
func (t Topology) ID(c Coord) NodeID {
	if c.Rank < 0 || c.Rank >= t.Ranks || c.Chip < 0 || c.Chip >= t.Chips ||
		c.Bank < 0 || c.Bank >= t.Banks {
		panic(fmt.Sprintf("core: coordinate %+v outside topology %+v", c, t))
	}
	return NodeID((c.Rank*t.Chips+c.Chip)*t.Banks + c.Bank)
}

// Coord maps a flat node index to its coordinate.
func (t Topology) Coord(id NodeID) Coord {
	n := int(id)
	if n < 0 || n >= t.Nodes() {
		panic(fmt.Sprintf("core: node %d outside topology %+v", n, t))
	}
	return Coord{
		Rank: n / (t.Chips * t.Banks),
		Chip: (n / t.Banks) % t.Chips,
		Bank: n % t.Banks,
	}
}

// SameChip reports whether two nodes share a DRAM chip.
func (t Topology) SameChip(a, b NodeID) bool {
	ca, cb := t.Coord(a), t.Coord(b)
	return ca.Rank == cb.Rank && ca.Chip == cb.Chip
}

// SameRank reports whether two nodes share a rank (DIMM).
func (t Topology) SameRank(a, b NodeID) bool {
	return t.Coord(a).Rank == t.Coord(b).Rank
}

// String renders the topology as "RxCxB".
func (t Topology) String() string {
	return fmt.Sprintf("%dx%dx%d", t.Ranks, t.Chips, t.Banks)
}
