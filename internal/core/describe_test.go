package core

import (
	"strings"
	"testing"
	"testing/quick"

	"pimnet/internal/collective"
	"pimnet/internal/config"
)

func TestDescribeListsPhases(t *testing.T) {
	p := channel(t, 256)
	plan, err := PlanFor(p.Network(), req(collective.AllReduce, 32<<10, 256))
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Describe()
	for _, want := range []string{"bank-RS", "chip-RS", "rank-bcast-reduce", "chip-AG", "bank-AG",
		"inter-bank", "inter-chip", "inter-rank", "256 DPUs"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Describe missing %q:\n%s", want, s)
		}
	}
	bigPlan, err := PlanFor(p.Network(), req(collective.AllReduce, 256<<10, 256))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(bigPlan.Describe(), "staging") {
		t.Fatal("Describe missing staging line for oversized payload")
	}
	a2a, err := PlanFor(p.Network(), req(collective.AllToAll, 32<<10, 256))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a2a.Describe(), "pipelined") {
		t.Fatal("Describe missing pipelined marker for rank-unicast phase")
	}
}

// The compiler's scheduled volumes must match the closed-form Table V
// volumes for every pattern and hierarchy shape.
func TestPlanVolumesMatchClosedForm(t *testing.T) {
	shapes := []int{1, 8, 16, 64, 128, 256}
	patterns := []collective.Pattern{collective.AllReduce, collective.ReduceScatter, collective.AllToAll}
	for _, n := range shapes {
		for _, pat := range patterns {
			sys, err := config.Default().WithDPUs(n)
			if err != nil {
				t.Fatal(err)
			}
			net, err := NewNetwork(sys)
			if err != nil {
				t.Fatal(err)
			}
			r := req(pat, 32<<10, n)
			plan, err := PlanFor(net, r)
			if err != nil {
				t.Fatal(err)
			}
			got := plan.Volumes()
			want, ok := ExpectedVolumes(net.Topo, r)
			if !ok {
				t.Fatalf("no closed form for %v", pat)
			}
			if got.Rank != want.Rank {
				t.Fatalf("%v n=%d: rank bytes %d, want %d", pat, n, got.Rank, want.Rank)
			}
			if pat != collective.AllToAll {
				if got.Bank != want.Bank {
					t.Fatalf("%v n=%d: bank bytes %d, want %d", pat, n, got.Bank, want.Bank)
				}
				// Chip volume: the compiler also uses the chip channels
				// during the bus phase (shard feeding); subtract that known
				// extra before comparing the ring component.
				extra := int64(0)
				if net.Topo.Ranks > 1 {
					// Each bus step sends every chip's shard set once.
					perRank := r.BytesPerNode
					extra = int64(net.Topo.Ranks) * perRank
					if pat == collective.ReduceScatter {
						// RS has the same single bus phase.
						extra = int64(net.Topo.Ranks) * perRank
					}
				}
				if got.Chip != want.Chip+extra {
					t.Fatalf("%v n=%d: chip bytes %d, want %d (+%d bus feed)",
						pat, n, got.Chip, want.Chip, extra)
				}
			}
		}
	}
}

// Property: for random payload sizes, scheduled volumes conserve bytes —
// the rank tier of AllReduce carries exactly ranks*D and the bank tier
// exactly 2*P*ringTraffic(D) regardless of divisibility.
func TestPlanVolumeProperty(t *testing.T) {
	sys, err := config.Default().WithDPUs(256)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(sys)
	if err != nil {
		t.Fatal(err)
	}
	f := func(kb uint8) bool {
		d := (int64(kb)%64 + 1) * 1024
		r := req(collective.AllReduce, d, 256)
		plan, err := PlanFor(net, r)
		if err != nil {
			return false
		}
		got := plan.Volumes()
		want, _ := ExpectedVolumes(net.Topo, r)
		return got.Rank == want.Rank && got.Bank == want.Bank
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: execution time is monotone nondecreasing in payload size.
func TestExecMonotoneInPayload(t *testing.T) {
	p := channel(t, 256)
	var prev int64 = -1
	for _, kb := range []int64{1, 2, 4, 8, 16, 32, 64, 128} {
		res, err := p.Collective(req(collective.AllReduce, kb<<10, 256))
		if err != nil {
			t.Fatal(err)
		}
		if int64(res.Time) < prev {
			t.Fatalf("time decreased at %d KB", kb)
		}
		prev = int64(res.Time)
	}
}
