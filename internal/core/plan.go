package core

import (
	"fmt"

	"pimnet/internal/metrics"
	"pimnet/internal/sim"

	"pimnet/internal/collective"
)

// Tier identifies which PIMnet tier a phase runs on.
type Tier int

// Tiers in packaging order.
const (
	TierBank Tier = iota
	TierChip
	TierRank
)

// String returns the tier name.
func (t Tier) String() string {
	switch t {
	case TierBank:
		return "inter-bank"
	case TierChip:
		return "inter-chip"
	case TierRank:
		return "inter-rank"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// Component maps a tier to its breakdown component.
func (t Tier) Component() metrics.Component {
	switch t {
	case TierBank:
		return metrics.InterBank
	case TierChip:
		return metrics.InterChip
	case TierRank:
		return metrics.InterRank
	default:
		panic(fmt.Sprintf("core: unknown tier %d", int(t)))
	}
}

// Kind classifies a resource for contention checking.
type Kind int

// Resource kinds. Ring segments may be time-multiplexed within a step (the
// static schedule serializes flows deliberately, e.g. the all-to-all shift
// steps); crossbar ports and the bus must carry at most one transfer per
// step — that is the hardware property that lets PIMnet omit buffers and
// arbitration.
const (
	KindRing Kind = iota
	KindCrossbarPort
	KindBus
)

// Transfer is one scheduled link reservation.
type Transfer struct {
	Link  *sim.Link
	Kind  Kind
	Bytes int64
	// Dead marks a transfer whose compiled route traverses a hard-failed
	// resource (a stuck crossbar pairing): the data never arrives, and the
	// executor models it as a transfer that never completes so the phase
	// timeout guard can catch it. Dead transfers still occupy their port in
	// the contention check — the hardware does drive the channel.
	Dead bool
}

// Step is a synchronized communication step: all transfers start together
// once the previous step has fully completed (lock-step static schedule).
type Step struct {
	Transfers []Transfer
	// ReduceBytesPerNode is the volume each receiving DPU combines into its
	// local buffer during this step (zero for non-reducing patterns). The
	// DPU streams the reduction concurrently with reception, so a step
	// lasts max(transfer, reduce).
	ReduceBytesPerNode int64
}

// Phase is a sequence of steps on one tier. A pipelined phase releases all
// steps together and lets the shared resources serialize them in schedule
// order (the buffer chip streams the next pair's data off the DQ pins while
// the bus carries the current pair); a non-pipelined phase is lock-step.
type Phase struct {
	Name      string
	Tier      Tier
	Steps     []Step
	Pipelined bool
}

// Plan is a fully compiled, statically scheduled collective.
type Plan struct {
	Req    collective.Request
	Topo   Topology
	Phases []Phase
	// MemBytes is the MRAM<->WRAM DMA staging volume per DPU charged when
	// the payload exceeds the WRAM communication buffer (the paper's "Mem"
	// overhead).
	MemBytes int64
	// verified memoizes a successful CheckContention so replays skip the
	// per-step bookkeeping. Any code that mutates Phases after construction
	// must clear it (rerouteRings does).
	verified bool
}

// TotalTransferBytes sums scheduled bytes across all phases (diagnostics).
func (p *Plan) TotalTransferBytes() int64 {
	var total int64
	for _, ph := range p.Phases {
		for _, st := range ph.Steps {
			for _, tr := range st.Transfers {
				total += tr.Bytes
			}
		}
	}
	return total
}

// TierBytes sums scheduled bytes on one tier.
func (p *Plan) TierBytes(t Tier) int64 {
	var total int64
	for _, ph := range p.Phases {
		if ph.Tier != t {
			continue
		}
		for _, st := range ph.Steps {
			for _, tr := range st.Transfers {
				total += tr.Bytes
			}
		}
	}
	return total
}

// CheckContention verifies the static-schedule property: within any single
// step, every crossbar port and the bus appear in at most one transfer.
// A violation means the compiler produced a schedule the bufferless
// hardware could not execute; it is always a bug. A pass is memoized on the
// plan, so the executor's defensive re-check is free for compiled plans.
func (p *Plan) CheckContention() error {
	for pi, ph := range p.Phases {
		for si, st := range ph.Steps {
			seen := make(map[*sim.Link]int)
			for _, tr := range st.Transfers {
				if tr.Bytes < 0 {
					return fmt.Errorf("core: phase %d (%s) step %d: negative transfer", pi, ph.Name, si)
				}
				if tr.Link == nil {
					return fmt.Errorf("core: phase %d (%s) step %d: nil link", pi, ph.Name, si)
				}
				seen[tr.Link]++
				if tr.Kind != KindRing && seen[tr.Link] > 1 {
					return fmt.Errorf("core: phase %d (%s) step %d: %s scheduled %d times in one step",
						pi, ph.Name, si, tr.Link.Name(), seen[tr.Link])
				}
			}
		}
	}
	p.verified = true
	return nil
}
