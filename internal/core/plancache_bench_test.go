package core

import (
	"testing"

	"pimnet/internal/collective"
)

// The cold/warm pair isolates what the cache saves: ColdCompile runs the
// full scheduler (chunk geometry, route construction, contention analysis)
// for the heaviest Table V plan; WarmBind replays the same point through a
// populated cache, which reduces to a coordinate-to-link lookup pass.

func BenchmarkPlanColdCompile(b *testing.B) {
	b.ReportAllocs()
	n := testNet(b, 2560)
	req := testReq(collective.AllToAll, 2560, 32<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanFor(n, req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanWarmBind(b *testing.B) {
	b.ReportAllocs()
	n := testNet(b, 2560)
	req := testReq(collective.AllToAll, 2560, 32<<10)
	c := NewPlanCache()
	if _, err := PlanVia(c, n, req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanVia(c, n, req); err != nil {
			b.Fatal(err)
		}
	}
}
