package core

import (
	"fmt"

	"pimnet/internal/config"
	"pimnet/internal/faults"
	"pimnet/internal/sim"
	"pimnet/internal/trace"
)

// Network instantiates the PIMnet resources for one memory channel:
//
//   - per chip, one effective ring channel per bank hop (the four 16-bit
//     unidirectional bank-I/O channels give every hop 2x the per-channel
//     rate when a bidirectional ring algorithm streams both directions);
//   - per chip, one DQ send channel and one DQ receive channel into the
//     buffer-chip crossbar;
//   - one half-duplex DDR bus shared by all ranks.
//
// All resources are sim.Links; the static scheduler guarantees by
// construction (and the contention checker verifies) that crossbar and bus
// steps never overlap conflicting transfers, which is what lets the
// hardware omit buffers and arbitration.
type Network struct {
	Sys  config.System
	Topo Topology

	ringHop  [][][]*sim.Link // [rank][chip][bank]: bank -> bank+1 ring segment
	chipSend [][]*sim.Link   // [rank][chip]: chip -> crossbar
	chipRecv [][]*sim.Link   // [rank][chip]: crossbar -> chip
	rankBus  *sim.Link       // shared multi-drop DDR bus

	// stepOverheadPs is an optional fixed guard charged at every lock-step
	// boundary (ablation knob; see SetStepOverhead).
	stepOverheadPs int64

	// Fault state. deadPath records stuck crossbar pairings (the internal
	// mux from one chip's ingress to another's egress is wedged); chipOrder,
	// when non-nil, is the logical->physical chip remap the recompiler
	// installed to exclude those pairings from the configured ring; ringPos
	// reverse-indexes ring segments for route-around recompilation.
	deadPath  map[chipPath]bool
	chipOrder []int
	ringPos   map[*sim.Link]ringLoc

	// linkRef reverse-indexes every link to its coordinate so compiled
	// plans can be lifted into network-independent blueprints (plancache.go).
	linkRef map[*sim.Link]LinkRef

	// scratch is the executor's reusable working set (see execScratch in
	// exec.go). It follows the network's single-owner contract: one scratch
	// per network, never shared across sweep workers.
	scratch execScratch

	// Observability. tracer receives the executor's structured events;
	// traceLinks gates per-transfer KindLinkBusy emission (trace.LevelLink),
	// precomputed so the executor's inner loop tests one bool. util is the
	// attached utilization aggregator when the tracer contains one,
	// resolved once so report plumbing needs no type switches. All three
	// are nil/false when tracing is off — the hot paths then run the exact
	// pre-instrumentation instruction sequence plus predictable branches,
	// preserving the 0 allocs/op contract of BENCH_baseline.json.
	tracer     trace.Tracer
	traceLinks bool
	util       *trace.Util
}

// chipPath identifies one configured crossbar pairing within a rank.
type chipPath struct{ rank, src, dst int }

// ringLoc locates a ring segment in the hierarchy.
type ringLoc struct{ rank, chip, seg int }

// NewNetwork builds the PIMnet resource graph for the configured channel.
func NewNetwork(sys config.System) (*Network, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	topo := Topology{Ranks: sys.Ranks, Chips: sys.ChipsPerRank, Banks: sys.BanksPerChip}
	n := &Network{Sys: sys, Topo: topo}
	n.ringHop = make([][][]*sim.Link, topo.Ranks)
	n.chipSend = make([][]*sim.Link, topo.Ranks)
	n.chipRecv = make([][]*sim.Link, topo.Ranks)
	ringBW := sys.BankRingBW()
	for r := 0; r < topo.Ranks; r++ {
		n.ringHop[r] = make([][]*sim.Link, topo.Chips)
		n.chipSend[r] = make([]*sim.Link, topo.Chips)
		n.chipRecv[r] = make([]*sim.Link, topo.Chips)
		for c := 0; c < topo.Chips; c++ {
			n.ringHop[r][c] = make([]*sim.Link, topo.Banks)
			for b := 0; b < topo.Banks; b++ {
				name := fmt.Sprintf("ring[r%d,c%d,b%d]", r, c, b)
				n.ringHop[r][c][b] = sim.NewLink(name, ringBW, sys.Net.BankHopLat)
			}
			n.chipSend[r][c] = sim.NewLink(fmt.Sprintf("dq-send[r%d,c%d]", r, c),
				sys.Net.ChipChannelBW, sys.Net.ChipHopLat+sys.Net.SwitchLat)
			n.chipRecv[r][c] = sim.NewLink(fmt.Sprintf("dq-recv[r%d,c%d]", r, c),
				sys.Net.ChipChannelBW, sys.Net.ChipHopLat)
		}
	}
	n.rankBus = sim.NewLink("ddr-bus", sys.Net.RankBusBW, sys.Net.RankBusLat)
	n.ringPos = make(map[*sim.Link]ringLoc, topo.Ranks*topo.Chips*topo.Banks)
	n.linkRef = make(map[*sim.Link]LinkRef, topo.Ranks*topo.Chips*(topo.Banks+2)+1)
	for r := 0; r < topo.Ranks; r++ {
		for c := 0; c < topo.Chips; c++ {
			for b := 0; b < topo.Banks; b++ {
				n.ringPos[n.ringHop[r][c][b]] = ringLoc{r, c, b}
				n.linkRef[n.ringHop[r][c][b]] = LinkRef{Role: RefRing, Rank: r, Chip: c, Index: b}
			}
			n.linkRef[n.chipSend[r][c]] = LinkRef{Role: RefChipSend, Rank: r, Chip: c}
			n.linkRef[n.chipRecv[r][c]] = LinkRef{Role: RefChipRecv, Rank: r, Chip: c}
		}
	}
	n.linkRef[n.rankBus] = LinkRef{Role: RefBus}
	return n, nil
}

// Reset clears all reservations so the network can run another experiment.
func (n *Network) Reset() {
	for _, rank := range n.ringHop {
		for _, chip := range rank {
			for _, l := range chip {
				l.Reset()
			}
		}
	}
	for r := range n.chipSend {
		for c := range n.chipSend[r] {
			n.chipSend[r][c].Reset()
			n.chipRecv[r][c].Reset()
		}
	}
	n.rankBus.Reset()
}

// SetTracer attaches a structured execution tracer at the given level;
// pass nil to detach. The executor then emits phase, synchronization, and
// staging spans, and — at trace.LevelLink — one KindLinkBusy per scheduled
// transfer. If the tracer contains a trace.Util aggregator (directly or
// via trace.Multi), it is resolved here so UtilSummary can surface
// link-utilization statistics without re-walking the tracer tree.
func (n *Network) SetTracer(t trace.Tracer, level trace.Level) {
	n.tracer = t
	n.traceLinks = t != nil && level >= trace.LevelLink
	n.util = trace.FindUtil(t)
}

// Tracer returns the attached tracer (nil when tracing is off).
func (n *Network) Tracer() trace.Tracer { return n.tracer }

// UtilSummary digests the attached utilization aggregator into per-tier
// occupancy statistics and a top-N contended-links table. It returns nil
// when no aggregator is attached — the nil is what keeps machine.Report
// comparable across untraced runs.
func (n *Network) UtilSummary() *trace.Summary {
	if n.util == nil {
		return nil
	}
	return n.util.Summary(trace.DefaultTopN)
}

// linkEndpoints resolves a link to its (from, to) trace coordinates: ring
// segments connect bank b to its clockwise successor, DQ channels connect
// a chip to the crossbar (-1), and the shared bus has no fixed endpoints.
func (n *Network) linkEndpoints(l *sim.Link) (int32, int32) {
	ref, ok := n.linkRef[l]
	if !ok {
		return -1, -1
	}
	switch ref.Role {
	case RefRing:
		return int32(ref.Index), int32((ref.Index + 1) % n.Topo.Banks)
	case RefChipSend:
		return int32(ref.Chip), -1
	case RefChipRecv:
		return -1, int32(ref.Chip)
	default:
		return -1, -1
	}
}

// physChip maps a logical chip position to the physical chip occupying it.
// The identity map until the recompiler installs a reordering to route
// around stuck crossbar pairings.
func (n *Network) physChip(chip int) int {
	if n.chipOrder == nil {
		return chip
	}
	return n.chipOrder[chip]
}

// RingLink returns the ring segment from bank b to its clockwise successor
// within (rank, chip).
func (n *Network) RingLink(rank, chip, bank int) *sim.Link {
	return n.ringHop[rank][n.physChip(chip)][bank]
}

// ChipSendLink returns the chip's DQ send channel into the crossbar.
func (n *Network) ChipSendLink(rank, chip int) *sim.Link {
	return n.chipSend[rank][n.physChip(chip)]
}

// ChipRecvLink returns the chip's DQ receive channel from the crossbar.
func (n *Network) ChipRecvLink(rank, chip int) *sim.Link {
	return n.chipRecv[rank][n.physChip(chip)]
}

// chipPair emits the send/receive transfer pair of one crossbar hop from
// logical chip a to logical chip b within rank. When the crossbar pairing
// between the mapped physical chips is stuck (a hard fault), both transfers
// are marked Dead: the DQ channels themselves are healthy, but data routed
// through the wedged internal mux never arrives, which the executor turns
// into a detection timeout.
func (n *Network) chipPair(rank, a, b int, bytes int64) (Transfer, Transfer) {
	pa, pb := n.physChip(a), n.physChip(b)
	dead := n.deadPath[chipPath{rank, pa, pb}]
	return Transfer{Link: n.chipSend[rank][pa], Kind: KindCrossbarPort, Bytes: bytes, Dead: dead},
		Transfer{Link: n.chipRecv[rank][pb], Kind: KindCrossbarPort, Bytes: bytes, Dead: dead}
}

// Bus returns the shared inter-rank DDR bus.
func (n *Network) Bus() *sim.Link { return n.rankBus }

// SyncLatency returns the READY/START propagation cost for a collective
// whose scope spans the given number of hierarchy levels: within one chip
// only the control interface unit participates; across chips the inter-chip
// switch aggregates; across ranks the inter-rank switch does (Section IV-C).
func (n *Network) SyncLatency() sim.Time {
	switch {
	case n.Topo.Ranks > 1:
		return n.Sys.Net.SyncRankLat
	case n.Topo.Chips > 1:
		return n.Sys.Net.SyncChipLat
	default:
		return n.Sys.Net.SyncBankLat
	}
}

// linkAt resolves a fault site to the physical link it names.
func (n *Network) linkAt(site faults.Site, rank, chip, index int) (*sim.Link, error) {
	if rank < 0 || rank >= n.Topo.Ranks {
		return nil, fmt.Errorf("core: fault rank %d out of range [0,%d)", rank, n.Topo.Ranks)
	}
	if site != faults.SiteBus && (chip < 0 || chip >= n.Topo.Chips) {
		return nil, fmt.Errorf("core: fault chip %d out of range [0,%d)", chip, n.Topo.Chips)
	}
	switch site {
	case faults.SiteRing:
		if index < 0 || index >= n.Topo.Banks {
			return nil, fmt.Errorf("core: fault ring segment %d out of range [0,%d)", index, n.Topo.Banks)
		}
		return n.ringHop[rank][chip][index], nil
	case faults.SiteChipSend:
		return n.chipSend[rank][chip], nil
	case faults.SiteChipRecv:
		return n.chipRecv[rank][chip], nil
	case faults.SiteBus:
		return n.rankBus, nil
	default:
		return nil, fmt.Errorf("core: fault site %v does not name a link", site)
	}
}

// ApplyFault realizes one fault into the network. Straggler, corruption and
// sync-drop faults carry no network state (the fault model itself drives
// them at execution time) and are accepted as no-ops so a schedule can apply
// a whole model uniformly.
func (n *Network) ApplyFault(f faults.Fault) error {
	switch f.Class {
	case faults.LinkDegrade:
		l, err := n.linkAt(f.Site, f.Rank, f.Chip, f.Index)
		if err != nil {
			return err
		}
		if f.Factor <= 0 || f.Factor > 1 {
			return fmt.Errorf("core: degrade factor %v outside (0,1]", f.Factor)
		}
		l.Degrade(f.Factor)
		return nil
	case faults.LinkFail:
		if f.Site == faults.SiteChipPath {
			if f.Rank < 0 || f.Rank >= n.Topo.Ranks {
				return fmt.Errorf("core: fault rank %d out of range [0,%d)", f.Rank, n.Topo.Ranks)
			}
			if f.Chip < 0 || f.Chip >= n.Topo.Chips || f.Index < 0 || f.Index >= n.Topo.Chips {
				return fmt.Errorf("core: chip pair (%d,%d) out of range [0,%d)", f.Chip, f.Index, n.Topo.Chips)
			}
			if f.Chip == f.Index {
				return fmt.Errorf("core: chip pair (%d,%d) is not a crossbar pairing", f.Chip, f.Index)
			}
			if n.deadPath == nil {
				n.deadPath = make(map[chipPath]bool)
			}
			n.deadPath[chipPath{f.Rank, f.Chip, f.Index}] = true
			return nil
		}
		l, err := n.linkAt(f.Site, f.Rank, f.Chip, f.Index)
		if err != nil {
			return err
		}
		l.Fail()
		return nil
	case faults.Straggler, faults.TransientCorrupt, faults.SyncDrop:
		return nil
	default:
		return fmt.Errorf("core: unknown fault class %v", f.Class)
	}
}

// ClearFaults repairs every link, forgets stuck crossbar pairings, and
// drops any recompiled chip ordering, restoring the pristine topology.
func (n *Network) ClearFaults() {
	for _, rank := range n.ringHop {
		for _, chip := range rank {
			for _, l := range chip {
				l.Restore()
			}
		}
	}
	for r := range n.chipSend {
		for c := range n.chipSend[r] {
			n.chipSend[r][c].Restore()
			n.chipRecv[r][c].Restore()
		}
	}
	n.rankBus.Restore()
	n.deadPath = nil
	n.chipOrder = nil
}

// hasHardFaults reports whether any resource is hard-failed (as opposed to
// merely degraded): a failed link or a stuck crossbar pairing. Hard faults
// require recompilation; soft faults only slow the existing plan down.
func (n *Network) hasHardFaults() bool {
	if len(n.deadPath) > 0 {
		return true
	}
	for _, rank := range n.ringHop {
		for _, chip := range rank {
			for _, l := range chip {
				if l.Failed() {
					return true
				}
			}
		}
	}
	for r := range n.chipSend {
		for c := range n.chipSend[r] {
			if n.chipSend[r][c].Failed() || n.chipRecv[r][c].Failed() {
				return true
			}
		}
	}
	return n.rankBus.Failed()
}

// ScaleBankBandwidth rewrites every ring segment for a new per-channel
// inter-bank bandwidth (Fig. 14a sensitivity sweep).
func (n *Network) ScaleBankBandwidth(perChannelBW float64) {
	sys := n.Sys
	sys.Net.BankChannelBW = perChannelBW
	eff := sys.BankRingBW()
	n.Sys = sys
	for _, rank := range n.ringHop {
		for _, chip := range rank {
			for _, l := range chip {
				l.SetBandwidth(eff)
			}
		}
	}
}

// ScaleGlobalBandwidth rewrites the inter-chip channels and the rank bus by
// a common factor (Fig. 14b sensitivity sweep).
func (n *Network) ScaleGlobalBandwidth(factor float64) {
	n.Sys.Net.ChipChannelBW *= factor
	n.Sys.Net.RankBusBW *= factor
	for r := range n.chipSend {
		for c := range n.chipSend[r] {
			n.chipSend[r][c].SetBandwidth(n.Sys.Net.ChipChannelBW)
			n.chipRecv[r][c].SetBandwidth(n.Sys.Net.ChipChannelBW)
		}
	}
	n.rankBus.SetBandwidth(n.Sys.Net.RankBusBW)
}
