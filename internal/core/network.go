package core

import (
	"fmt"

	"pimnet/internal/config"
	"pimnet/internal/sim"
)

// Network instantiates the PIMnet resources for one memory channel:
//
//   - per chip, one effective ring channel per bank hop (the four 16-bit
//     unidirectional bank-I/O channels give every hop 2x the per-channel
//     rate when a bidirectional ring algorithm streams both directions);
//   - per chip, one DQ send channel and one DQ receive channel into the
//     buffer-chip crossbar;
//   - one half-duplex DDR bus shared by all ranks.
//
// All resources are sim.Links; the static scheduler guarantees by
// construction (and the contention checker verifies) that crossbar and bus
// steps never overlap conflicting transfers, which is what lets the
// hardware omit buffers and arbitration.
type Network struct {
	Sys  config.System
	Topo Topology

	ringHop  [][][]*sim.Link // [rank][chip][bank]: bank -> bank+1 ring segment
	chipSend [][]*sim.Link   // [rank][chip]: chip -> crossbar
	chipRecv [][]*sim.Link   // [rank][chip]: crossbar -> chip
	rankBus  *sim.Link       // shared multi-drop DDR bus

	// stepOverheadPs is an optional fixed guard charged at every lock-step
	// boundary (ablation knob; see SetStepOverhead).
	stepOverheadPs int64
}

// NewNetwork builds the PIMnet resource graph for the configured channel.
func NewNetwork(sys config.System) (*Network, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	topo := Topology{Ranks: sys.Ranks, Chips: sys.ChipsPerRank, Banks: sys.BanksPerChip}
	n := &Network{Sys: sys, Topo: topo}
	n.ringHop = make([][][]*sim.Link, topo.Ranks)
	n.chipSend = make([][]*sim.Link, topo.Ranks)
	n.chipRecv = make([][]*sim.Link, topo.Ranks)
	ringBW := sys.BankRingBW()
	for r := 0; r < topo.Ranks; r++ {
		n.ringHop[r] = make([][]*sim.Link, topo.Chips)
		n.chipSend[r] = make([]*sim.Link, topo.Chips)
		n.chipRecv[r] = make([]*sim.Link, topo.Chips)
		for c := 0; c < topo.Chips; c++ {
			n.ringHop[r][c] = make([]*sim.Link, topo.Banks)
			for b := 0; b < topo.Banks; b++ {
				name := fmt.Sprintf("ring[r%d,c%d,b%d]", r, c, b)
				n.ringHop[r][c][b] = sim.NewLink(name, ringBW, sys.Net.BankHopLat)
			}
			n.chipSend[r][c] = sim.NewLink(fmt.Sprintf("dq-send[r%d,c%d]", r, c),
				sys.Net.ChipChannelBW, sys.Net.ChipHopLat+sys.Net.SwitchLat)
			n.chipRecv[r][c] = sim.NewLink(fmt.Sprintf("dq-recv[r%d,c%d]", r, c),
				sys.Net.ChipChannelBW, sys.Net.ChipHopLat)
		}
	}
	n.rankBus = sim.NewLink("ddr-bus", sys.Net.RankBusBW, sys.Net.RankBusLat)
	return n, nil
}

// Reset clears all reservations so the network can run another experiment.
func (n *Network) Reset() {
	for _, rank := range n.ringHop {
		for _, chip := range rank {
			for _, l := range chip {
				l.Reset()
			}
		}
	}
	for r := range n.chipSend {
		for c := range n.chipSend[r] {
			n.chipSend[r][c].Reset()
			n.chipRecv[r][c].Reset()
		}
	}
	n.rankBus.Reset()
}

// RingLink returns the ring segment from bank b to its clockwise successor
// within (rank, chip).
func (n *Network) RingLink(rank, chip, bank int) *sim.Link { return n.ringHop[rank][chip][bank] }

// ChipSendLink returns the chip's DQ send channel into the crossbar.
func (n *Network) ChipSendLink(rank, chip int) *sim.Link { return n.chipSend[rank][chip] }

// ChipRecvLink returns the chip's DQ receive channel from the crossbar.
func (n *Network) ChipRecvLink(rank, chip int) *sim.Link { return n.chipRecv[rank][chip] }

// Bus returns the shared inter-rank DDR bus.
func (n *Network) Bus() *sim.Link { return n.rankBus }

// SyncLatency returns the READY/START propagation cost for a collective
// whose scope spans the given number of hierarchy levels: within one chip
// only the control interface unit participates; across chips the inter-chip
// switch aggregates; across ranks the inter-rank switch does (Section IV-C).
func (n *Network) SyncLatency() sim.Time {
	switch {
	case n.Topo.Ranks > 1:
		return n.Sys.Net.SyncRankLat
	case n.Topo.Chips > 1:
		return n.Sys.Net.SyncChipLat
	default:
		return n.Sys.Net.SyncBankLat
	}
}

// ScaleBankBandwidth rewrites every ring segment for a new per-channel
// inter-bank bandwidth (Fig. 14a sensitivity sweep).
func (n *Network) ScaleBankBandwidth(perChannelBW float64) {
	sys := n.Sys
	sys.Net.BankChannelBW = perChannelBW
	eff := sys.BankRingBW()
	n.Sys = sys
	for _, rank := range n.ringHop {
		for _, chip := range rank {
			for _, l := range chip {
				l.SetBandwidth(eff)
			}
		}
	}
}

// ScaleGlobalBandwidth rewrites the inter-chip channels and the rank bus by
// a common factor (Fig. 14b sensitivity sweep).
func (n *Network) ScaleGlobalBandwidth(factor float64) {
	n.Sys.Net.ChipChannelBW *= factor
	n.Sys.Net.RankBusBW *= factor
	for r := range n.chipSend {
		for c := range n.chipSend[r] {
			n.chipSend[r][c].SetBandwidth(n.Sys.Net.ChipChannelBW)
			n.chipRecv[r][c].SetBandwidth(n.Sys.Net.ChipChannelBW)
		}
	}
	n.rankBus.SetBandwidth(n.Sys.Net.RankBusBW)
}
