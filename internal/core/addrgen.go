package core

import (
	"fmt"

	"pimnet/internal/collective"
	"pimnet/internal/sim"
)

// This file implements the paper's Algorithm 1: "AllReduce scheduling &
// addressing algorithm". Because PIMnet never involves the host during
// communication, every PIM bank must know, before the collective starts,
// (a) the WRAM address its next send reads from and (b) the timing offset
// at which each phase of the schedule begins. Both are pure functions of
// the hierarchy shape, the bank's coordinates, the payload size, and the
// per-phase durations — all known at compile time — so the CPU produces
// them during kernel compilation and the DPUs simply follow the script.

// Domain selects the hierarchy level being scheduled.
type Domain int

// Hierarchy domains of Algorithm 1.
const (
	DomainBank Domain = iota
	DomainChip
	DomainRank
)

// String returns the domain name.
func (d Domain) String() string {
	switch d {
	case DomainBank:
		return "bank"
	case DomainChip:
		return "chip"
	case DomainRank:
		return "rank"
	default:
		return fmt.Sprintf("Domain(%d)", int(d))
	}
}

// PhaseKind selects the AllReduce half being scheduled.
type PhaseKind int

// AllReduce phases: reduce-scatter then all-gather.
const (
	PhaseRS PhaseKind = iota
	PhaseAG
)

// String returns the phase name.
func (p PhaseKind) String() string {
	if p == PhaseRS {
		return "RS"
	}
	return "AG"
}

// PhaseTimes carries the pre-computed duration of every phase of the
// hierarchical AllReduce — Algorithm 1's T_{RS_B} ... T_{AG_B} inputs.
type PhaseTimes struct {
	RSBank, RSChip, RSRank sim.Time
	AGRank, AGChip, AGBank sim.Time
}

// AddrParams are the static inputs of Algorithm 1 for one PIM bank.
type AddrParams struct {
	Banks, Chips, Ranks int   // N_B, N_C, N_R
	Bank, Chip, Rank    int   // I_B, I_C, I_R
	DataBytes           int64 // D
	BaseAddr            int64 // Addr_B: base WRAM address of the payload
	Times               PhaseTimes
}

// Schedule is Algorithm 1's output for one (domain, phase) pair: when the
// bank may start that phase relative to the collective's START signal, and
// the local address of the first chunk it sends.
type Schedule struct {
	Offset    sim.Time
	StartAddr int64
}

// ScheduleAllReduce evaluates Algorithm 1. The paper's pseudocode spells
// out the bank domain; the chip and rank domains follow the identical
// pattern one hierarchy level up, with the sub-chunk geometry produced by
// the preceding level's reduce-scatter.
func ScheduleAllReduce(domain Domain, phase PhaseKind, p AddrParams) (Schedule, error) {
	if err := p.validate(); err != nil {
		return Schedule{}, err
	}
	T := p.Times
	bankChunk := p.DataBytes / int64(p.Banks)
	chipChunk := bankChunk / int64(max(p.Chips, 1))
	switch domain {
	case DomainBank:
		if phase == PhaseRS {
			// offset = 0; Addr_s = Addr_B + D/N_B * I_B
			return Schedule{Offset: 0, StartAddr: p.BaseAddr + bankChunk*int64(p.Bank)}, nil
		}
		// offset = T_RS_B + T_RS_C + T_RS_R + T_AG_R + T_AG_C
		// Addr_s = Addr_B + D/N_B * ((I_B + N_B - 1) % N_B)
		off := T.RSBank + T.RSChip + T.RSRank + T.AGRank + T.AGChip
		chunk := (p.Bank + p.Banks - 1) % p.Banks
		return Schedule{Offset: off, StartAddr: p.BaseAddr + bankChunk*int64(chunk)}, nil
	case DomainChip:
		// The chip domain operates within the bank-chunk this bank owns
		// after the bank-level reduce-scatter.
		ownedBase := p.BaseAddr + bankChunk*int64(collective.OwnedAfterRS(p.Banks, p.Bank))
		if phase == PhaseRS {
			return Schedule{
				Offset:    T.RSBank,
				StartAddr: ownedBase + chipChunk*int64(p.Chip),
			}, nil
		}
		off := T.RSBank + T.RSChip + T.RSRank + T.AGRank
		chunk := (p.Chip + p.Chips - 1) % p.Chips
		return Schedule{Offset: off, StartAddr: ownedBase + chipChunk*int64(chunk)}, nil
	case DomainRank:
		// The rank domain broadcasts the sub-chunk owned after the chip
		// level; the bus schedule serializes ranks in index order.
		ownedBase := p.BaseAddr + bankChunk*int64(collective.OwnedAfterRS(p.Banks, p.Bank)) +
			chipChunk*int64(collective.OwnedAfterRS(p.Chips, p.Chip))
		if phase == PhaseRS {
			return Schedule{Offset: T.RSBank + T.RSChip, StartAddr: ownedBase}, nil
		}
		return Schedule{Offset: T.RSBank + T.RSChip + T.RSRank, StartAddr: ownedBase}, nil
	default:
		return Schedule{}, fmt.Errorf("core: unknown domain %v", domain)
	}
}

func (p AddrParams) validate() error {
	switch {
	case p.Banks < 1 || p.Chips < 1 || p.Ranks < 1:
		return fmt.Errorf("core: addrgen hierarchy %dx%dx%d invalid", p.Ranks, p.Chips, p.Banks)
	case p.Bank < 0 || p.Bank >= p.Banks:
		return fmt.Errorf("core: addrgen I_B=%d out of [0,%d)", p.Bank, p.Banks)
	case p.Chip < 0 || p.Chip >= p.Chips:
		return fmt.Errorf("core: addrgen I_C=%d out of [0,%d)", p.Chip, p.Chips)
	case p.Rank < 0 || p.Rank >= p.Ranks:
		return fmt.Errorf("core: addrgen I_R=%d out of [0,%d)", p.Rank, p.Ranks)
	case p.DataBytes < 0:
		return fmt.Errorf("core: addrgen negative payload")
	}
	return nil
}

// AllToAllSendAddrs generates, for one node, the send address of every
// destination block of a personalized all-to-all (Fig. 9b): Addr_j is the
// WRAM offset of the block bound for node j. The count is proportional to
// the number of participants, exactly as the paper notes.
func AllToAllSendAddrs(base, dataBytes int64, nodes int) []int64 {
	addrs := make([]int64, nodes)
	for j := 0; j < nodes; j++ {
		lo, _ := collective.ChunkBounds(int(dataBytes), nodes, j)
		addrs[j] = base + int64(lo)
	}
	return addrs
}

// PhaseTimesFromPlan extracts Algorithm 1's phase-duration inputs from a
// compiled AllReduce plan by summing step costs per phase name. Plans
// compiled for degenerate shapes (single chip or rank) report zero for the
// missing phases.
func PhaseTimesFromPlan(n *Network, p *Plan) PhaseTimes {
	var t PhaseTimes
	for _, ph := range p.Phases {
		d := phaseDuration(n, ph, p.Req.ElemSize)
		switch ph.Name {
		case "bank-RS":
			t.RSBank = d
		case "chip-RS":
			t.RSChip = d
		case "rank-bcast-reduce":
			t.RSRank = d
			t.AGRank = 0 // the bus broadcast doubles as the gather hop
		case "chip-AG":
			t.AGChip = d
		case "bank-AG":
			t.AGBank = d
		}
	}
	return t
}

// phaseDuration evaluates one phase in isolation on fresh link state.
func phaseDuration(n *Network, ph Phase, elemSize int) sim.Time {
	n.Reset()
	var now sim.Time
	for _, st := range ph.Steps {
		end := now
		for _, tr := range st.Transfers {
			_, done := tr.Link.Reserve(now, tr.Bytes)
			if done > end {
				end = done
			}
		}
		if st.ReduceBytesPerNode > 0 {
			if r := now + n.reduceTime(st.ReduceBytesPerNode, elemSize); r > end {
				end = r
			}
		}
		now = end
	}
	n.Reset()
	return now
}
