package core

import (
	"fmt"

	"pimnet/internal/backend"
	"pimnet/internal/collective"
	"pimnet/internal/faults"
	"pimnet/internal/metrics"
	"pimnet/internal/sim"
	"pimnet/internal/trace"
)

// This file implements PIMnet's recovery ladder. The static schedule that
// makes PIMnet fast is also what makes it fragile: a single slow or dead
// resource silently invalidates every compiled timing offset, and there are
// no buffers or NACKs to absorb the difference. Recovery therefore climbs
// three rungs, each strictly more expensive than the last:
//
//  1. detection — every phase has a compiled completion bound (its healthy
//     duration plus slack); the READY/START tree doubles as a watchdog that
//     flags any phase overrunning its bound;
//  2. retry — transient payload corruption and lost launches are re-executed
//     with exponential backoff, validated against the data-level
//     interpreter in internal/collective;
//  3. recompilation / degradation — hard failures trigger a host-side
//     recompile that routes around the dead resource (reordered inter-chip
//     ring, long-way-around bank ring); if the topology is disconnected for
//     the pattern, the collective falls back to the host-relay baseline.

const (
	// detectSlackDiv sets the timeout guard band: a phase may run 1/4 over
	// its compiled healthy duration before the watchdog declares it failed.
	detectSlackDiv = 4
	// detectSlackMin keeps bounds on near-zero phases meaningful.
	detectSlackMin = 100 * sim.Nanosecond
	// retryBackoffBase is the first retry's backoff; attempt k waits
	// retryBackoffBase << k.
	retryBackoffBase = 1 * sim.Microsecond
	// maxRetries bounds rung 2 before the ladder degrades to the fallback.
	maxRetries = 4
	// verifyWordCap bounds the payload the data-level interpreter checks;
	// correctness of the routing is independent of vector length.
	verifyWordCap = 1 << 12
)

// ftState carries the armed fault model and the recovery ladder's
// bookkeeping for one PIMnet backend.
type ftState struct {
	model       *faults.Model
	sched       *sim.Schedule
	fallback    backend.Backend
	counters    metrics.FaultCounters
	invocations int
	degraded    bool
	// dplans caches recompiled plans per request: the host keeps the
	// routed-around schedule, so later invocations skip detection entirely.
	dplans map[collective.Request]*Plan
	// softAccepted records that a slow-but-connected network was accepted;
	// later invocations run without the watchdog instead of re-detecting.
	softAccepted bool
}

// EnableFaults arms the backend with a fault model. Static faults (At == 0)
// are realized into the network immediately; timed faults are queued on an
// engine-level schedule that fires at step-release instants. fallback
// (usually the host-relay baseline) is consulted when recompilation cannot
// reconnect the topology for a pattern; nil makes such failures hard errors.
func (p *PIMnet) EnableFaults(m *faults.Model, fallback backend.Backend) error {
	if m == nil {
		return fmt.Errorf("pimnet: nil fault model")
	}
	ft := &ftState{model: m, sched: &sim.Schedule{}, fallback: fallback,
		dplans: make(map[collective.Request]*Plan)}
	for _, f := range m.Faults {
		switch f.Class {
		case faults.Straggler, faults.TransientCorrupt, faults.SyncDrop:
			continue // carried by the model, not by network state
		}
		if f.At <= 0 {
			if err := p.net.ApplyFault(f); err != nil {
				return err
			}
			continue
		}
		// Validate the site now so a bad timed fault fails at arm time, not
		// silently mid-run; the activation itself cannot fail afterwards.
		if _, err := p.net.linkAt(f.Site, f.Rank, f.Chip, f.Index); err != nil && f.Site != faults.SiteChipPath {
			return err
		}
		f := f
		ft.sched.Add(f.At, func() { _ = p.net.ApplyFault(f) })
	}
	ft.counters.Injected = uint64(len(m.Faults))
	p.ft = ft
	return nil
}

// FaultCounters returns the cumulative recovery-ladder counters (zero when
// no fault model is armed).
func (p *PIMnet) FaultCounters() metrics.FaultCounters {
	if p.ft == nil {
		return metrics.FaultCounters{}
	}
	return p.ft.counters
}

// DegradedMode reports whether any collective has completed in degraded
// mode: on a recompiled route, on an accepted slow run, or via the fallback.
func (p *PIMnet) DegradedMode() bool { return p.ft != nil && p.ft.degraded }

// ComputeSlowdown returns the straggler compute-slowdown factor (1 when no
// model is armed or no straggler was injected). The machine applies it to
// workload kernels: a lock-step fleet computes at the slowest DPU's pace.
func (p *PIMnet) ComputeSlowdown() float64 {
	if p.ft == nil {
		return 1
	}
	return p.ft.model.StragglerScale()
}

// FaultModel returns the armed model (nil when faults are disabled).
func (p *PIMnet) FaultModel() *faults.Model {
	if p.ft == nil {
		return nil
	}
	return p.ft.model
}

// compiledBounds executes the request on a pristine twin of the network and
// converts each phase's healthy duration into an abort deadline. The static
// compiler knows exactly when every phase must finish on healthy hardware —
// that knowledge is the detection signal.
func (p *PIMnet) compiledBounds(req collective.Request) ([]sim.Time, error) {
	twin, err := NewNetwork(p.net.Sys)
	if err != nil {
		return nil, err
	}
	// Keep ablation knobs in sync so the twin's timing matches the real plan.
	twin.stepOverheadPs = p.net.stepOverheadPs
	plan, err := PlanFor(twin, req)
	if err != nil {
		return nil, err
	}
	_, durs, _, err := twin.executePhases(plan, execOptions{})
	if err != nil {
		return nil, err
	}
	bounds := make([]sim.Time, len(durs))
	for i, d := range durs {
		bounds[i] = d + d/detectSlackDiv + detectSlackMin
	}
	return bounds, nil
}

// syncWatchdogTimeout is how long the root waits for the READY wave of a
// launch before declaring the START lost and re-launching.
func (n *Network) syncWatchdogTimeout() sim.Time {
	return 2*n.SyncLatency() + detectSlackMin
}

// faultCollective runs one collective under the recovery ladder.
func (p *PIMnet) faultCollective(req collective.Request) (backend.Result, error) {
	ft := p.ft
	inv := ft.invocations
	ft.invocations++

	var total sim.Time
	var bd metrics.Breakdown

	// Rung 0/2: a dropped READY/START launch trips the root's watchdog;
	// re-launch with backoff.
	for launch := 0; ft.model.SyncDropAttempt(inv, launch); launch++ {
		if launch >= maxRetries {
			return backend.Result{}, fmt.Errorf("pimnet: READY/START launch lost %d times for %v %s",
				launch+1, req.Pattern, fmtBytes(req.BytesPerNode))
		}
		ft.counters.Detected++
		ft.counters.Retried++
		wait := p.net.syncWatchdogTimeout() + retryBackoffBase<<launch
		if t := p.net.tracer; t != nil {
			t.Emit(trace.Event{Kind: trace.KindFaultDetected, Tier: trace.TierNone,
				Name: "READY/START launch lost", Start: int64(total), End: int64(total), From: -1, To: -1})
			t.Emit(trace.Event{Kind: trace.KindRetry, Tier: trace.TierNone,
				Name: "re-launch backoff", Start: int64(total), End: int64(total + wait),
				From: -1, To: -1, Seq: int64(launch)})
		}
		total += wait
		bd.Add(metrics.Recovery, wait)
	}

	opt := execOptions{sched: ft.sched, stragglerScale: ft.model.StragglerScale()}
	ft.sched.Rewind()

	// A previous invocation already recompiled around the hard faults for
	// this request: the host kept the plan, so run it committed.
	if dplan, ok := ft.dplans[req]; ok {
		opt.traceBase = total
		res, _, _, err := p.net.executePhases(dplan, opt)
		if err != nil {
			return backend.Result{}, fmt.Errorf("pimnet: cached recompiled plan: %w", err)
		}
		total += res.Time
		bd.Merge(res.Breakdown)
		return backend.Result{Time: total, Breakdown: bd}, nil
	}

	plan, err := PlanFor(p.net, req)
	if err != nil {
		return backend.Result{}, fmt.Errorf("pimnet: %w", err)
	}
	if !ft.softAccepted {
		bounds, err := p.compiledBounds(req)
		if err != nil {
			return backend.Result{}, fmt.Errorf("pimnet: compiled bounds: %w", err)
		}
		opt.bounds = bounds
	}
	for attempt := 0; ; attempt++ {
		opt.traceBase = total
		res, _, abortedAt, err := p.net.executePhases(plan, opt)
		if err != nil {
			return backend.Result{}, fmt.Errorf("pimnet: %w", err)
		}
		if abortedAt >= 0 {
			// Rung 1 fired: phase abortedAt overran its compiled bound. The
			// burned attempt is pure recovery time.
			ft.counters.Detected++
			total += res.Time
			bd.Add(metrics.Recovery, res.Time)
			if t := p.net.tracer; t != nil {
				t.Emit(trace.Event{Kind: trace.KindFaultDetected, Tier: trace.TierNone,
					Name: "phase overran compiled bound", Start: int64(total), End: int64(total),
					From: -1, To: -1, Seq: int64(abortedAt)})
			}
			return p.recoverHard(req, inv, plan, opt, total, bd)
		}
		// Rung 2: transient corruption is invisible to timing; the
		// receiver-side integrity check catches it at completion, and the
		// whole attempt's time is wasted.
		if ft.model.CorruptAttempt(inv, attempt) {
			ft.counters.Detected++
			if attempt >= maxRetries {
				return p.degradeToFallback(req, total, bd, res.Time,
					fmt.Errorf("payload corrupt after %d attempts", attempt+1))
			}
			ft.counters.Retried++
			waste := res.Time + retryBackoffBase<<attempt
			if t := p.net.tracer; t != nil {
				t.Emit(trace.Event{Kind: trace.KindFaultDetected, Tier: trace.TierNone,
					Name: "payload corrupt", Start: int64(total + res.Time), End: int64(total + res.Time),
					From: -1, To: -1})
				t.Emit(trace.Event{Kind: trace.KindRetry, Tier: trace.TierNone,
					Name: "corrupt-retry backoff", Start: int64(total + res.Time),
					End: int64(total + waste), From: -1, To: -1, Seq: int64(attempt)})
			}
			total += waste
			bd.Add(metrics.Recovery, waste)
			continue
		}
		if attempt > 0 {
			// A retry delivered: prove the re-executed schedule still moves
			// the right bytes by replaying it in the data-level interpreter.
			if err := p.verifyRecovered(req, inv); err != nil {
				return backend.Result{}, err
			}
		}
		total += res.Time
		bd.Merge(res.Breakdown)
		return backend.Result{Time: total, Breakdown: bd}, nil
	}
}

// recoverHard is rung 3 after a timeout detection: decide between accepting
// a slow-but-connected network, recompiling around hard failures, and
// falling back to the host relay.
func (p *PIMnet) recoverHard(req collective.Request, inv int, plan *Plan,
	opt execOptions, total sim.Time, bd metrics.Breakdown) (backend.Result, error) {
	ft := p.ft
	if !p.net.hasHardFaults() {
		// Slow but connected (degraded links, stragglers beyond the guard
		// band): every byte still arrives, so accept degraded timing and
		// re-run committed, without the watchdog.
		ft.counters.Degraded++
		ft.degraded = true
		ft.softAccepted = true
		opt.bounds = nil
		opt.traceBase = total
		res, _, _, err := p.net.executePhases(plan, opt)
		if err != nil {
			return backend.Result{}, fmt.Errorf("pimnet: degraded re-run: %w", err)
		}
		total += res.Time
		bd.Merge(res.Breakdown)
		return backend.Result{Time: total, Breakdown: bd}, nil
	}

	// Hard failure: the host recompiles a plan that routes around the dead
	// resource and re-uploads it — one launch plus one sync tree traversal.
	recompile := p.net.Sys.Host.LaunchOverhead + p.net.SyncLatency()
	dplan, err := PlanForDegraded(p.net, req)
	if err != nil {
		return p.degradeToFallback(req, total, bd, recompile, err)
	}
	ft.counters.Recompiled++
	ft.degraded = true
	ft.dplans[req] = dplan
	if t := p.net.tracer; t != nil {
		t.Emit(trace.Event{Kind: trace.KindReroute, Tier: trace.TierNone,
			Name: "recompile route-around", Start: int64(total), End: int64(total + recompile),
			From: -1, To: -1})
	}
	total += recompile
	bd.Add(metrics.Recovery, recompile)
	opt.bounds = nil
	opt.traceBase = total
	res, _, _, err := p.net.executePhases(dplan, opt)
	if err != nil {
		return backend.Result{}, fmt.Errorf("pimnet: recompiled plan: %w", err)
	}
	if err := p.verifyRecovered(req, inv); err != nil {
		return backend.Result{}, err
	}
	total += res.Time
	bd.Merge(res.Breakdown)
	return backend.Result{Time: total, Breakdown: bd}, nil
}

// degradeToFallback gives up on PIMnet delivery for this invocation and
// relays the collective through the host. waste is recovery time burned by
// the caller but not yet charged to the breakdown.
func (p *PIMnet) degradeToFallback(req collective.Request, total sim.Time,
	bd metrics.Breakdown, waste sim.Time, cause error) (backend.Result, error) {
	ft := p.ft
	if ft.fallback == nil {
		return backend.Result{}, fmt.Errorf("pimnet: unrecoverable fault (%v) and no fallback backend", cause)
	}
	ft.counters.Degraded++
	ft.degraded = true
	total += waste
	bd.Add(metrics.Recovery, waste)
	if t := p.net.tracer; t != nil {
		t.Emit(trace.Event{Kind: trace.KindFallback, Tier: trace.TierNone,
			Name: "host-relay fallback", Start: int64(total), End: int64(total), From: -1, To: -1})
	}
	res, err := ft.fallback.Collective(req)
	if err != nil {
		return backend.Result{}, fmt.Errorf("pimnet: fallback after %v: %w", cause, err)
	}
	bd.Merge(res.Breakdown)
	return backend.Result{Time: total + res.Time, Breakdown: bd}, nil
}

// verifyRecovered replays the pattern through the data-level interpreter to
// prove the recovered schedule is bit-correct. Payload size is capped: the
// routing, not the vector length, is what recovery may have changed.
func (p *PIMnet) verifyRecovered(req collective.Request, inv int) error {
	t := p.net.Topo
	vreq := req
	if vreq.ElemSize <= 0 {
		vreq.ElemSize = 4
	}
	if vreq.BytesPerNode > verifyWordCap*int64(vreq.ElemSize) {
		vreq.BytesPerNode = verifyWordCap * int64(vreq.ElemSize)
	}
	seed := p.ft.model.Spec.Seed ^ int64(inv)*0x9E3779B9
	if err := collective.Verify(vreq, t.Ranks, t.Chips, t.Banks, seed); err != nil {
		return fmt.Errorf("pimnet: recovered collective failed data verification: %w", err)
	}
	return nil
}

// PlanForDegraded recompiles a request around the network's hard faults: a
// reordered inter-chip ring excludes stuck crossbar pairings, and failed
// bank-ring segments are rerouted the long way around their ring. It errors
// when the topology is disconnected for the pattern (the caller then falls
// back to the host relay). The chosen chip ordering persists on the network,
// so subsequent invocations compile clean plans without re-detection.
func PlanForDegraded(n *Network, req collective.Request) (*Plan, error) {
	if len(n.deadPath) > 0 {
		switch req.Pattern {
		case collective.AllToAll:
			// Every ordered chip pair carries traffic; no ring ordering can
			// exclude a stuck pairing.
			return nil, fmt.Errorf("core: all-to-all uses every crossbar pairing; cannot exclude %d stuck pairings", len(n.deadPath))
		case collective.Gather, collective.Reduce:
			return nil, fmt.Errorf("core: funnel patterns converge on fixed pairings; cannot route around a stuck pairing")
		}
		order, ok := chipOrderAvoiding(n.Topo.Chips, n.deadPath)
		if !ok {
			return nil, fmt.Errorf("core: no inter-chip ring order avoids the %d stuck crossbar pairings", len(n.deadPath))
		}
		n.chipOrder = order
	}
	p, err := PlanFor(n, req)
	if err != nil {
		return nil, err
	}
	if err := n.rerouteRings(p); err != nil {
		return nil, err
	}
	// Anything still dead after reordering and rerouting (failed DQ channel,
	// failed bus, unavoidable pairing) means the pattern cannot be served.
	for _, ph := range p.Phases {
		for _, st := range ph.Steps {
			for _, tr := range st.Transfers {
				if tr.Dead {
					return nil, fmt.Errorf("core: phase %s still crosses a stuck crossbar pairing", ph.Name)
				}
				if tr.Link != nil && tr.Link.Failed() {
					return nil, fmt.Errorf("core: %s is hard-failed and unroutable", tr.Link.Name())
				}
			}
		}
	}
	if err := p.CheckContention(); err != nil {
		return nil, fmt.Errorf("core: recompiled plan: %w", err)
	}
	return p, nil
}

// chipOrderAvoiding searches for a cyclic ordering of the chips whose
// adjacent (successor) pairings avoid every stuck crossbar pairing. The
// search is deterministic backtracking with the first chip pinned (ring
// orders are rotation-invariant); with the handful of chips per rank PIMnet
// configures, and few dead pairings, it terminates immediately.
func chipOrderAvoiding(chips int, dead map[chipPath]bool) ([]int, bool) {
	bad := make(map[[2]int]bool, len(dead))
	for p := range dead {
		bad[[2]int{p.src, p.dst}] = true
	}
	order := make([]int, chips)
	used := make([]bool, chips)
	order[0] = 0
	used[0] = true
	var place func(k int) bool
	place = func(k int) bool {
		if k == chips {
			return !bad[[2]int{order[chips-1], order[0]}]
		}
		for c := 1; c < chips; c++ {
			if used[c] || bad[[2]int{order[k-1], c}] {
				continue
			}
			order[k] = c
			used[c] = true
			if place(k + 1) {
				return true
			}
			used[c] = false
		}
		return false
	}
	if chips == 1 {
		return order, true
	}
	if !place(1) {
		return nil, false
	}
	return order, true
}

// rerouteRings rewrites every transfer that rides a hard-failed bank-ring
// segment to go the long way around: the same bytes traverse each surviving
// segment of that ring instead (ring links multiplex, so the contention
// checker accepts this). Two failures in one ring disconnect it.
func (n *Network) rerouteRings(p *Plan) error {
	p.verified = false // transfers are rewritten below; force a re-check
	for pi := range p.Phases {
		ph := &p.Phases[pi]
		for si := range ph.Steps {
			st := &ph.Steps[si]
			rewritten := make([]Transfer, 0, len(st.Transfers))
			for _, tr := range st.Transfers {
				if tr.Kind != KindRing || tr.Link == nil || !tr.Link.Failed() {
					rewritten = append(rewritten, tr)
					continue
				}
				loc, ok := n.ringPos[tr.Link]
				if !ok {
					return fmt.Errorf("core: failed link %s is not a ring segment", tr.Link.Name())
				}
				var survivors []*sim.Link
				for b := 0; b < n.Topo.Banks; b++ {
					if l := n.ringHop[loc.rank][loc.chip][b]; !l.Failed() {
						survivors = append(survivors, l)
					}
				}
				if len(survivors) < n.Topo.Banks-1 {
					return fmt.Errorf("core: ring [r%d,c%d] has %d failed segments; banks disconnected",
						loc.rank, loc.chip, n.Topo.Banks-len(survivors))
				}
				for _, l := range survivors {
					rewritten = append(rewritten, Transfer{Link: l, Kind: KindRing, Bytes: tr.Bytes})
				}
			}
			st.Transfers = rewritten
		}
	}
	return nil
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20 && b%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", b>>20)
	case b >= 1<<10 && b%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}
