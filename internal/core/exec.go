package core

import (
	"math"

	"pimnet/internal/backend"
	"pimnet/internal/metrics"
	"pimnet/internal/sim"
)

// Execute runs a compiled plan on the network starting at t=0 and returns
// the end-to-end latency with its breakdown. Steps are lock-step: every
// transfer of a step is released together (the static schedule's START
// semantics) and the next step begins when the slowest transfer and the
// pipelined reduction both finish. The network's link state is reset first,
// so Execute is repeatable.
func (n *Network) Execute(p *Plan) (backend.Result, error) {
	if err := p.CheckContention(); err != nil {
		return backend.Result{}, err
	}
	n.Reset()
	var bd metrics.Breakdown
	var now sim.Time

	// MRAM<->WRAM staging for payloads that exceed the scratchpad.
	if p.MemBytes > 0 {
		now += n.memTime(p.MemBytes)
		bd.Add(metrics.Mem, now)
	}

	// READY/START synchronization: one tree traversal launches the whole
	// statically timed schedule (Section IV-C); the per-phase WAIT offsets
	// are already baked into the lock-step execution.
	sync := n.SyncLatency()
	now += sync
	bd.Add(metrics.Sync, sync)

	for _, ph := range p.Phases {
		phaseStart := now
		for _, st := range ph.Steps {
			stepStart := now
			if ph.Pipelined {
				stepStart = phaseStart
			} else {
				stepStart += sim.Time(n.stepOverheadPs)
			}
			end := stepStart
			for _, tr := range st.Transfers {
				_, done := tr.Link.Reserve(stepStart, tr.Bytes)
				if done > end {
					end = done
				}
			}
			if st.ReduceBytesPerNode > 0 {
				r := stepStart + n.reduceTime(st.ReduceBytesPerNode, p.Req.ElemSize)
				if r > end {
					end = r
				}
			}
			if ph.Pipelined && end < now {
				end = now
			}
			now = end
		}
		bd.Add(ph.Tier.Component(), now-phaseStart)
	}
	return backend.Result{Time: now, Breakdown: bd}, nil
}

// memTime converts a DMA staging volume into time: sustained DMA bandwidth
// plus a fixed setup latency per WRAM-sized burst. All DPUs stage in
// parallel, so this is charged once.
func (n *Network) memTime(bytes int64) sim.Time {
	d := n.Sys.DPU
	usable := d.WRAMBytes / 2
	if usable <= 0 {
		usable = 1
	}
	bursts := (bytes + usable - 1) / usable
	return sim.TransferTime(bytes, d.DMABandwidth) + sim.Time(bursts)*d.DMALatency
}

// reduceTime is the DPU-side cost of combining the received stream into the
// local buffer. The reduction loop is pipelined across tasklets, streaming
// one element per AddCycles; ComputeScale models faster PIM compute
// (Fig. 15 alternative-PIM analysis).
func (n *Network) reduceTime(bytes int64, elemSize int) sim.Time {
	if elemSize <= 0 {
		elemSize = 4
	}
	d := n.Sys.DPU
	elems := (bytes + int64(elemSize) - 1) / int64(elemSize)
	cycles := int64(math.Ceil(float64(elems) * d.AddCycles / d.ComputeScale))
	return sim.Cycles(cycles, d.FreqHz)
}
