package core

import (
	"math"

	"pimnet/internal/backend"
	"pimnet/internal/metrics"
	"pimnet/internal/sim"
	"pimnet/internal/trace"
)

// Execute runs a compiled plan on the network starting at t=0 and returns
// the end-to-end latency with its breakdown. Steps are lock-step: every
// transfer of a step is released together (the static schedule's START
// semantics) and the next step begins when the slowest transfer and the
// pipelined reduction both finish. The network's link state is reset first,
// so Execute is repeatable.
//
// Execute is the sweep hot path: after one warm-up run it allocates nothing,
// replaying the plan entirely out of the network's execScratch.
func (n *Network) Execute(p *Plan) (backend.Result, error) {
	res, _, _, err := n.executePhases(p, execOptions{})
	return res, err
}

// execScratch is the executor's reusable working set: the per-phase duration
// staging and the breakdown accumulator that executePhases would otherwise
// allocate on every replay. Ownership rule: exactly one scratch per Network,
// and a Network is a documented single-owner type — sweep workers each build
// their own backend (and so their own network and scratch), which is what
// keeps parallel sweeps bit-identical to serial runs with zero sharing.
type execScratch struct {
	// durs stages per-phase durations. The slice executePhases returns
	// aliases this buffer: it is valid only until the next execution on the
	// same network, and callers that retain durations must copy them out
	// (compiledBounds does).
	durs []sim.Time
	// bd accumulates the component breakdown; results receive a value copy.
	bd metrics.Breakdown
}

// execOptions configures the fault-aware execution path. The zero value
// reproduces the healthy fast path bit-for-bit.
type execOptions struct {
	// bounds are per-phase abort deadlines, indexed like p.Phases: the
	// compiled-bound timeout guard. A phase whose duration exceeds its
	// bound is cut off at the bound instant. nil disables detection.
	bounds []sim.Time
	// sched, when non-nil, fires timed fault activations at every step
	// release instant (faults land between lock-steps, never mid-transfer:
	// the schedule is statically timed, so a link can only change state at
	// a step boundary as far as the plan can observe).
	sched *sim.Schedule
	// stragglerScale > 1 stretches every DPU-side reduction by the slowest
	// straggler's factor: the lock-step reduce is gated by the last DPU.
	stragglerScale float64
	// traceBase offsets emitted trace timestamps. The recovery ladder
	// re-runs plans with the executor clock rebased at zero; it passes the
	// wall-clock already burned so a traced recovery renders its attempts
	// sequentially instead of stacked at t=0. Timing math never reads it.
	traceBase sim.Time
}

// executePhases is the engine behind Execute. It additionally returns the
// per-phase durations and the index of the first phase that overran its
// bound (-1 when none did). On an abort the result covers the time actually
// burned — completed phases plus the timed-out phase's full bound — charged
// to each phase's own component; the caller reattributes it to Recovery.
// The returned durations alias the network's execScratch and are valid only
// until the next execution on this network; copy before retaining.
func (n *Network) executePhases(p *Plan, opt execOptions) (backend.Result, []sim.Time, int, error) {
	// The contention check is memoized on the plan: every compiled or bound
	// plan was verified once at construction, so replays skip the per-step
	// map the checker builds. Only hand-assembled plans pay it here.
	if !p.verified {
		if err := p.CheckContention(); err != nil {
			return backend.Result{}, nil, -1, err
		}
	}
	n.Reset()
	sc := &n.scratch
	sc.durs = sc.durs[:0]
	sc.bd.Reset()
	bd := &sc.bd
	var now sim.Time
	tb := int64(opt.traceBase)

	// MRAM<->WRAM staging for payloads that exceed the scratchpad.
	if p.MemBytes > 0 {
		now += n.memTime(p.MemBytes)
		bd.Add(metrics.Mem, now)
		if n.tracer != nil {
			n.tracer.Emit(trace.Event{Kind: trace.KindMemStage, Tier: trace.TierNone,
				Name: "mram-stage", Start: tb, End: tb + int64(now), Bytes: p.MemBytes, From: -1, To: -1})
		}
	}

	// READY/START synchronization: one tree traversal launches the whole
	// statically timed schedule (Section IV-C); the per-phase WAIT offsets
	// are already baked into the lock-step execution.
	sync := n.SyncLatency()
	if n.tracer != nil {
		n.tracer.Emit(trace.Event{Kind: trace.KindSyncTree, Tier: trace.TierNone,
			Name: "ready-start", Start: tb + int64(now), End: tb + int64(now+sync), From: -1, To: -1})
	}
	now += sync
	bd.Add(metrics.Sync, sync)

	for pi, ph := range p.Phases {
		phaseStart := now
		if n.tracer != nil {
			n.tracer.Emit(trace.Event{Kind: trace.KindPhaseStart, Tier: trace.Tier(ph.Tier),
				Name: ph.Name, Start: tb + int64(phaseStart), End: tb + int64(phaseStart), From: -1, To: -1})
		}
		for si, st := range ph.Steps {
			var stepStart sim.Time
			if ph.Pipelined {
				stepStart = phaseStart
			} else {
				stepStart = sim.AddSat(now, sim.Time(n.stepOverheadPs))
			}
			if opt.sched != nil {
				opt.sched.ApplyUpTo(stepStart)
			}
			end := stepStart
			for _, tr := range st.Transfers {
				done := sim.MaxTime
				if !tr.Dead {
					var resStart sim.Time
					resStart, done = tr.Link.Reserve(stepStart, tr.Bytes)
					if n.traceLinks {
						// The busy window is the serialization interval:
						// reservation start to the instant the wire frees
						// (propagation excluded). A hard-failed wire never
						// frees; it emits nothing — the detection event
						// comes from the recovery ladder instead.
						if free := tr.Link.FreeAt(); free != sim.MaxTime {
							from, to := n.linkEndpoints(tr.Link)
							n.tracer.Emit(trace.Event{Kind: trace.KindLinkBusy,
								Tier: trace.Tier(ph.Tier), Name: ph.Name,
								Link: tr.Link.Name(), Start: tb + int64(resStart),
								End: tb + int64(free), Bytes: tr.Bytes,
								From: from, To: to, Seq: int64(si)})
						}
					}
				}
				if done > end {
					end = done
				}
			}
			if st.ReduceBytesPerNode > 0 {
				rt := n.reduceTime(st.ReduceBytesPerNode, p.Req.ElemSize)
				if opt.stragglerScale > 1 {
					rt = sim.Time(math.Ceil(float64(rt) * opt.stragglerScale))
				}
				r := sim.AddSat(stepStart, rt)
				if r > end {
					end = r
				}
			}
			if ph.Pipelined && end < now {
				end = now
			}
			now = end
		}
		if opt.bounds != nil && pi < len(opt.bounds) && now-phaseStart > opt.bounds[pi] {
			// The watchdog fires at the compiled bound: the phase missed
			// its statically known completion instant and is declared
			// failed. The bound's worth of wall-clock is burned.
			now = sim.AddSat(phaseStart, opt.bounds[pi])
			sc.durs = append(sc.durs, opt.bounds[pi])
			bd.Add(ph.Tier.Component(), opt.bounds[pi])
			if n.tracer != nil {
				n.tracer.Emit(trace.Event{Kind: trace.KindPhaseEnd, Tier: trace.Tier(ph.Tier),
					Name: ph.Name, Start: tb + int64(phaseStart), End: tb + int64(now), From: -1, To: -1})
			}
			return backend.Result{Time: now, Breakdown: *bd}, sc.durs, pi, nil
		}
		sc.durs = append(sc.durs, now-phaseStart)
		bd.Add(ph.Tier.Component(), now-phaseStart)
		if n.tracer != nil {
			n.tracer.Emit(trace.Event{Kind: trace.KindPhaseEnd, Tier: trace.Tier(ph.Tier),
				Name: ph.Name, Start: tb + int64(phaseStart), End: tb + int64(now), From: -1, To: -1})
		}
	}
	return backend.Result{Time: now, Breakdown: *bd}, sc.durs, -1, nil
}

// memTime converts a DMA staging volume into time: sustained DMA bandwidth
// plus a fixed setup latency per WRAM-sized burst. All DPUs stage in
// parallel, so this is charged once.
func (n *Network) memTime(bytes int64) sim.Time {
	d := n.Sys.DPU
	usable := d.WRAMBytes / 2
	if usable <= 0 {
		usable = 1
	}
	bursts := (bytes + usable - 1) / usable
	return sim.TransferTime(bytes, d.DMABandwidth) + sim.Time(bursts)*d.DMALatency
}

// reduceTime is the DPU-side cost of combining the received stream into the
// local buffer. The reduction loop is pipelined across tasklets, streaming
// one element per AddCycles; ComputeScale models faster PIM compute
// (Fig. 15 alternative-PIM analysis).
func (n *Network) reduceTime(bytes int64, elemSize int) sim.Time {
	if elemSize <= 0 {
		elemSize = 4
	}
	d := n.Sys.DPU
	elems := (bytes + int64(elemSize) - 1) / int64(elemSize)
	cycles := int64(math.Ceil(float64(elems) * d.AddCycles / d.ComputeScale))
	return sim.Cycles(cycles, d.FreqHz)
}
