package core

import (
	"fmt"

	"pimnet/internal/collective"
)

// FlatRingPlan compiles the ablation alternative to the hierarchical
// Table V AllReduce: one logical ring over all P DPUs in bank order,
// ignoring the packaging hierarchy. Chunks shrink to D/P and the schedule
// needs 2*(P-1) globally synchronized steps instead of the hierarchy's
// 2*(b-1) + 2*(c-1) + r. Ring successors that cross a chip boundary
// traverse the DQ ports; rank boundaries additionally cross the bus, which
// therefore carries several scheduled (serialized) transfers per step —
// legal for the compiler (the static schedule orders them) but exactly the
// kind of long, latency-exposed step chain the paper's hierarchical design
// avoids.
//
// DESIGN.md lists this as ablation A1; the experiment quantifies how the
// flat ring's 64x step count turns per-step overheads (sync guard, bus
// turnaround, skew) into the dominant cost as they grow.
func FlatRingPlan(n *Network, req collective.Request) (*Plan, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if req.Pattern != collective.AllReduce && req.Pattern != collective.ReduceScatter {
		return nil, fmt.Errorf("core: flat ring plan supports AllReduce/ReduceScatter, not %v", req.Pattern)
	}
	topo := n.Topo
	P := topo.Nodes()
	if req.Nodes != P {
		return nil, fmt.Errorf("core: request scope %d != channel population %d", req.Nodes, P)
	}
	p := &Plan{Req: req, Topo: topo}
	D := req.BytesPerNode
	if P > 1 {
		rs := flatRingPhase(n, "flat-RS", D, true)
		p.Phases = append(p.Phases, rs)
		if req.Pattern == collective.AllReduce {
			p.Phases = append(p.Phases, flatRingPhase(n, "flat-AG", D, false))
		}
	}
	p.MemBytes = memStagingBytes(n, req)
	if err := p.CheckContention(); err != nil {
		return nil, err
	}
	return p, nil
}

// flatRingPhase emits P-1 steps of a whole-population ring pass. Every
// node sends one D/P chunk to its flat successor each step.
func flatRingPhase(n *Network, name string, D int64, reduce bool) Phase {
	topo := n.Topo
	P := topo.Nodes()
	ph := Phase{Name: name, Tier: TierRank} // dominated by the slowest tier it touches
	chunk := func(i int) int64 { return chunkBytes(D, P, i) }
	for s := 0; s < collective.RingSteps(P); s++ {
		st := Step{}
		var maxChunk int64
		for src := 0; src < P; src++ {
			dst := collective.RingSuccessor(P, src)
			bytes := chunk(collective.RSSendChunk(P, src, s))
			if bytes > maxChunk {
				maxChunk = bytes
			}
			sc, dc := topo.Coord(NodeID(src)), topo.Coord(NodeID(dst))
			switch {
			case sc.Rank == dc.Rank && sc.Chip == dc.Chip:
				st.Transfers = append(st.Transfers, Transfer{
					Link: n.RingLink(sc.Rank, sc.Chip, sc.Bank), Kind: KindRing, Bytes: bytes,
				})
			case sc.Rank == dc.Rank:
				st.Transfers = append(st.Transfers,
					Transfer{Link: n.ChipSendLink(sc.Rank, sc.Chip), Kind: KindCrossbarPort, Bytes: bytes},
					Transfer{Link: n.ChipRecvLink(dc.Rank, dc.Chip), Kind: KindCrossbarPort, Bytes: bytes},
				)
			default:
				// The bus carries one scheduled transaction per rank
				// boundary per step; they serialize on the shared wire, so
				// mark them as deliberately multiplexed.
				st.Transfers = append(st.Transfers,
					Transfer{Link: n.ChipSendLink(sc.Rank, sc.Chip), Kind: KindCrossbarPort, Bytes: bytes},
					Transfer{Link: n.Bus(), Kind: KindRing, Bytes: bytes},
					Transfer{Link: n.ChipRecvLink(dc.Rank, dc.Chip), Kind: KindCrossbarPort, Bytes: bytes},
				)
			}
		}
		if reduce {
			st.ReduceBytesPerNode = maxChunk
		}
		ph.Steps = append(ph.Steps, st)
	}
	return ph
}

// StepOverhead configures a fixed per-step scheduling guard added to every
// lock-step boundary during Execute — the knob the flat-vs-hierarchical
// ablation turns to model per-step skew, bus turnaround and control
// distribution costs. Zero by default (the paper's deterministic timing
// needs no guard).
func (n *Network) SetStepOverhead(t int64) { n.stepOverheadPs = t }

// StepOverhead returns the configured per-step guard in picoseconds.
func (n *Network) StepOverhead() int64 { return n.stepOverheadPs }
