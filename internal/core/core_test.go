package core

import (
	"testing"

	"pimnet/internal/collective"
	"pimnet/internal/config"
	"pimnet/internal/metrics"
	"pimnet/internal/sim"
)

func channel(t *testing.T, dpus int) *PIMnet {
	t.Helper()
	sys, err := config.Default().WithDPUs(dpus)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPIMnet(sys)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func req(pat collective.Pattern, bytesPerNode int64, nodes int) collective.Request {
	return collective.Request{Pattern: pat, Op: collective.Sum,
		BytesPerNode: bytesPerNode, ElemSize: 4, Nodes: nodes}
}

func TestPlanContentionFree(t *testing.T) {
	p := channel(t, 256)
	patterns := []collective.Pattern{
		collective.ReduceScatter, collective.AllGather, collective.AllReduce,
		collective.AllToAll, collective.Broadcast, collective.Gather, collective.Reduce,
	}
	for _, pat := range patterns {
		plan, err := PlanFor(p.Network(), req(pat, 32<<10, 256))
		if err != nil {
			t.Fatalf("%v: %v", pat, err)
		}
		if err := plan.CheckContention(); err != nil {
			t.Fatalf("%v: %v", pat, err)
		}
		if len(plan.Phases) == 0 {
			t.Fatalf("%v: empty plan", pat)
		}
	}
}

func TestPlanScopeMismatch(t *testing.T) {
	p := channel(t, 256)
	if _, err := PlanFor(p.Network(), req(collective.AllReduce, 1024, 128)); err == nil {
		t.Fatal("scope mismatch accepted")
	}
}

func TestPlanRejectsInvalidRequest(t *testing.T) {
	p := channel(t, 8)
	bad := req(collective.AllReduce, 1022, 8) // not a multiple of elem size
	if _, err := PlanFor(p.Network(), bad); err == nil {
		t.Fatal("invalid request accepted")
	}
}

func TestAllReducePhaseStructure(t *testing.T) {
	p := channel(t, 256)
	plan, err := PlanFor(p.Network(), req(collective.AllReduce, 32<<10, 256))
	if err != nil {
		t.Fatal(err)
	}
	// Table V: Ring(bank) -> Ring(chip) -> Broadcast(rank) -> Ring(chip) -> Ring(bank).
	want := []string{"bank-RS", "chip-RS", "rank-bcast-reduce", "chip-AG", "bank-AG"}
	if len(plan.Phases) != len(want) {
		t.Fatalf("phases = %d, want %d", len(plan.Phases), len(want))
	}
	for i, ph := range plan.Phases {
		if ph.Name != want[i] {
			t.Fatalf("phase %d = %q, want %q", i, ph.Name, want[i])
		}
	}
	// Ring phases have N-1 steps; the bus phase has one step per rank.
	if got := len(plan.Phases[0].Steps); got != 7 {
		t.Fatalf("bank-RS steps = %d, want 7", got)
	}
	if got := len(plan.Phases[1].Steps); got != 7 {
		t.Fatalf("chip-RS steps = %d, want 7", got)
	}
	if got := len(plan.Phases[2].Steps); got != 4 {
		t.Fatalf("rank steps = %d, want 4", got)
	}
}

func TestAllReduceDegenerateShapes(t *testing.T) {
	// Single chip: no chip or rank phases. Single bank: nothing at all.
	p8 := channel(t, 8)
	plan, err := PlanFor(p8.Network(), req(collective.AllReduce, 4096, 8))
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range plan.Phases {
		if ph.Tier != TierBank {
			t.Fatalf("8-DPU AllReduce uses tier %v", ph.Tier)
		}
	}
	p1 := channel(t, 1)
	plan, err = PlanFor(p1.Network(), req(collective.AllReduce, 4096, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Phases) != 0 {
		t.Fatalf("1-DPU AllReduce has %d phases", len(plan.Phases))
	}
}

func TestAllReduceTierVolumes(t *testing.T) {
	p := channel(t, 256)
	D := int64(32 << 10)
	plan, err := PlanFor(p.Network(), req(collective.AllReduce, D, 256))
	if err != nil {
		t.Fatal(err)
	}
	// Bus volume: one broadcast of D per rank.
	var busBytes int64
	for _, ph := range plan.Phases {
		for _, st := range ph.Steps {
			for _, tr := range st.Transfers {
				if tr.Kind == KindBus {
					busBytes += tr.Bytes
				}
			}
		}
	}
	if busBytes != 4*D {
		t.Fatalf("bus bytes = %d, want %d", busBytes, 4*D)
	}
	// Bank-tier volume: every DPU sends (b-1)/b*D twice (RS + AG):
	// 256 * 2 * 7/8 * 32K = 14 MiB.
	bank := plan.TierBytes(TierBank)
	want := int64(256) * 2 * (D * 7 / 8)
	if bank != want {
		t.Fatalf("bank tier bytes = %d, want %d", bank, want)
	}
}

func TestAllToAllBusVolume(t *testing.T) {
	p := channel(t, 256)
	D := int64(32 << 10) // 128 bytes per destination block
	plan, err := PlanFor(p.Network(), req(collective.AllToAll, D, 256))
	if err != nil {
		t.Fatal(err)
	}
	var busBytes int64
	for _, ph := range plan.Phases {
		for _, st := range ph.Steps {
			for _, tr := range st.Transfers {
				if tr.Kind == KindBus {
					busBytes += tr.Bytes
				}
			}
		}
	}
	// Cross-rank volume: (r-1)/r of the total payload.
	want := int64(256) * D * 3 / 4
	if busBytes != want {
		t.Fatalf("A2A bus bytes = %d, want %d", busBytes, want)
	}
}

func TestExecuteAllReduceBreakdown(t *testing.T) {
	p := channel(t, 256)
	res, err := p.Collective(req(collective.AllReduce, 32<<10, 256))
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Fatal("zero latency")
	}
	bd := res.Breakdown
	for _, c := range []metrics.Component{metrics.InterBank, metrics.InterChip, metrics.InterRank, metrics.Sync} {
		if bd.Get(c) <= 0 {
			t.Errorf("component %v is zero", c)
		}
	}
	if bd.Get(metrics.HostXfer) != 0 || bd.Get(metrics.Launch) != 0 {
		t.Error("PIMnet charged host components")
	}
	// 32 KB reduces in place and fits the usable scratchpad: no staging.
	if bd.Get(metrics.Mem) != 0 {
		t.Error("32 KB in-place payload should not stage")
	}
	// Oversized payloads must stage from MRAM.
	res2, err := p.Collective(req(collective.AllReduce, 128<<10, 256))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Breakdown.Get(metrics.Mem) == 0 {
		t.Error("128 KB payload should stage through WRAM")
	}
}

func TestAllReduceLatencyBallpark(t *testing.T) {
	// Sanity-check the absolute scale of the model: a 32 KB AllReduce over
	// 256 DPUs should land in the ~60-300us window (Section III analysis),
	// far from both the ns regime and the ms regime of the host baseline.
	p := channel(t, 256)
	res, err := p.Collective(req(collective.AllReduce, 32<<10, 256))
	if err != nil {
		t.Fatal(err)
	}
	if res.Time < 30*sim.Microsecond || res.Time > 500*sim.Microsecond {
		t.Fatalf("256-DPU 32KB AllReduce = %v, outside plausible window", res.Time)
	}
}

func TestWeakScalingBandwidthParallelism(t *testing.T) {
	// Weak scaling: per-DPU payload fixed. PIMnet's bank tier runs all
	// chips in parallel, so inter-bank time must stay flat as DPUs grow,
	// and total time must grow sublinearly with population.
	var prev sim.Time
	var bank8 sim.Time
	for _, n := range []int{8, 64, 256} {
		p := channel(t, n)
		res, err := p.Collective(req(collective.AllReduce, 32<<10, n))
		if err != nil {
			t.Fatal(err)
		}
		if n == 8 {
			bank8 = res.Breakdown.Get(metrics.InterBank)
		} else {
			b := res.Breakdown.Get(metrics.InterBank)
			if b > bank8*11/10 {
				t.Fatalf("inter-bank time grew with population: %v at 8 vs %v at %d", bank8, b, n)
			}
		}
		if prev != 0 && res.Time > prev*8 {
			t.Fatalf("AllReduce time grew superlinearly: %v -> %v", prev, res.Time)
		}
		prev = res.Time
	}
}

func TestA2AScalesWithGlobalTraffic(t *testing.T) {
	// All-to-all is dominated by the shared bus; quadrupling the population
	// under weak scaling must grow the time (global traffic grows).
	p64 := channel(t, 64)
	r64, err := p64.Collective(req(collective.AllToAll, 32<<10, 64))
	if err != nil {
		t.Fatal(err)
	}
	p256 := channel(t, 256)
	r256, err := p256.Collective(req(collective.AllToAll, 32<<10, 256))
	if err != nil {
		t.Fatal(err)
	}
	if r256.Time <= r64.Time {
		t.Fatalf("A2A time should grow with population: %v -> %v", r64.Time, r256.Time)
	}
}

func TestBandwidthSensitivity(t *testing.T) {
	// Fig. 14a: reducing inter-bank bandwidth slows AllReduce but the
	// inter-chip/rank phases are unaffected.
	p := channel(t, 256)
	base, err := p.Collective(req(collective.AllReduce, 32<<10, 256))
	if err != nil {
		t.Fatal(err)
	}
	p.Network().ScaleBankBandwidth(0.1 * config.GBps)
	slow, err := p.Collective(req(collective.AllReduce, 32<<10, 256))
	if err != nil {
		t.Fatal(err)
	}
	if slow.Time <= base.Time {
		t.Fatal("reducing bank bandwidth did not slow AllReduce")
	}
	if slow.Breakdown.Get(metrics.InterChip) != base.Breakdown.Get(metrics.InterChip) {
		t.Fatal("bank bandwidth sweep changed inter-chip time")
	}
	// Fig. 14b: scaling global bandwidth up speeds the chip/rank tiers.
	p2 := channel(t, 256)
	p2.Network().ScaleGlobalBandwidth(2)
	fast, err := p2.Collective(req(collective.AllReduce, 32<<10, 256))
	if err != nil {
		t.Fatal(err)
	}
	if fast.Breakdown.Get(metrics.InterChip) >= base.Breakdown.Get(metrics.InterChip) {
		t.Fatal("doubling global bandwidth did not speed inter-chip phase")
	}
}

func TestExecuteRepeatable(t *testing.T) {
	p := channel(t, 64)
	r := req(collective.AllReduce, 16<<10, 64)
	a, err := p.Collective(r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Collective(r)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time {
		t.Fatalf("repeat run differs: %v vs %v", a.Time, b.Time)
	}
}

func TestReduceScatterCheaperThanAllReduce(t *testing.T) {
	p := channel(t, 256)
	rs, err := p.Collective(req(collective.ReduceScatter, 32<<10, 256))
	if err != nil {
		t.Fatal(err)
	}
	ar, err := p.Collective(req(collective.AllReduce, 32<<10, 256))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Time >= ar.Time {
		t.Fatalf("RS (%v) should be cheaper than AR (%v)", rs.Time, ar.Time)
	}
}

func TestBroadcastAndFunnels(t *testing.T) {
	p := channel(t, 256)
	bc, err := p.Collective(collective.Request{Pattern: collective.Broadcast,
		BytesPerNode: 16 << 10, ElemSize: 4, Nodes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if bc.Time <= 0 {
		t.Fatal("broadcast has zero latency")
	}
	g, err := p.Collective(collective.Request{Pattern: collective.Gather,
		BytesPerNode: 1 << 10, ElemSize: 4, Nodes: 256})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := p.Collective(collective.Request{Pattern: collective.Reduce,
		Op: collective.Sum, BytesPerNode: 1 << 10, ElemSize: 4, Nodes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if rd.Time < g.Time {
		t.Fatalf("Reduce (%v) should not be faster than Gather (%v)", rd.Time, g.Time)
	}
	// Broadcast of M bytes is far cheaper than gathering N*M.
	if bc.Time >= g.Time {
		t.Fatalf("broadcast (%v) should beat gather (%v)", bc.Time, g.Time)
	}
}

func TestNetworkValidation(t *testing.T) {
	bad := config.Default()
	bad.Ranks = 0
	if _, err := NewPIMnet(bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestContentionCheckerCatchesViolations(t *testing.T) {
	p := channel(t, 256)
	n := p.Network()
	plan := &Plan{Phases: []Phase{{
		Name: "bogus", Tier: TierRank,
		Steps: []Step{{Transfers: []Transfer{
			{Link: n.Bus(), Kind: KindBus, Bytes: 10},
			{Link: n.Bus(), Kind: KindBus, Bytes: 10},
		}}},
	}}}
	if err := plan.CheckContention(); err == nil {
		t.Fatal("double-booked bus not caught")
	}
	plan2 := &Plan{Phases: []Phase{{
		Name: "bogus", Tier: TierBank,
		Steps: []Step{{Transfers: []Transfer{{Link: nil, Bytes: 1}}}},
	}}}
	if err := plan2.CheckContention(); err == nil {
		t.Fatal("nil link not caught")
	}
	plan3 := &Plan{Phases: []Phase{{
		Name: "bogus", Tier: TierBank,
		Steps: []Step{{Transfers: []Transfer{{Link: n.Bus(), Kind: KindBus, Bytes: -1}}}},
	}}}
	if err := plan3.CheckContention(); err == nil {
		t.Fatal("negative bytes not caught")
	}
}

func TestSyncLatencyScope(t *testing.T) {
	sys := config.Default()
	full, _ := NewNetwork(sys)
	if full.SyncLatency() != sys.Net.SyncRankLat {
		t.Fatal("multi-rank scope should use rank sync latency")
	}
	oneRank, _ := config.Default().WithDPUs(64)
	nr, _ := NewNetwork(oneRank)
	if nr.SyncLatency() != sys.Net.SyncChipLat {
		t.Fatal("one-rank scope should use chip sync latency")
	}
	oneChip, _ := config.Default().WithDPUs(8)
	nc, _ := NewNetwork(oneChip)
	if nc.SyncLatency() != sys.Net.SyncBankLat {
		t.Fatal("one-chip scope should use bank sync latency")
	}
}
