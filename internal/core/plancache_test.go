package core

import (
	"testing"

	"pimnet/internal/collective"
	"pimnet/internal/config"
)

func testNet(t testing.TB, dpus int) *Network {
	t.Helper()
	sys, err := config.Default().WithDPUs(dpus)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNetwork(sys)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func testReq(pat collective.Pattern, nodes int, bytes int64) collective.Request {
	return collective.Request{Pattern: pat, Op: collective.Sum,
		BytesPerNode: bytes, ElemSize: 4, Nodes: nodes}
}

// TestBlueprintRoundTrip: lifting a plan into a blueprint and binding it on
// a second, independently built network must execute to the identical
// result, and both plans must share one digest.
func TestBlueprintRoundTrip(t *testing.T) {
	for _, pat := range []collective.Pattern{collective.AllReduce, collective.AllGather,
		collective.ReduceScatter, collective.AllToAll, collective.Broadcast} {
		src := testNet(t, 256)
		req := testReq(pat, 256, 32<<10)
		plan, err := PlanFor(src, req)
		if err != nil {
			t.Fatalf("%v: %v", pat, err)
		}
		bp, err := BlueprintOf(plan, src)
		if err != nil {
			t.Fatalf("%v: BlueprintOf: %v", pat, err)
		}
		dst := testNet(t, 256)
		bound, err := bp.Bind(dst)
		if err != nil {
			t.Fatalf("%v: Bind: %v", pat, err)
		}
		d1, err := PlanDigest(plan, src)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := PlanDigest(bound, dst)
		if err != nil {
			t.Fatal(err)
		}
		if d1 != d2 {
			t.Errorf("%v: digest changed across bind: %s vs %s", pat, d1, d2)
		}
		r1, err := src.Execute(plan)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := dst.Execute(bound)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Time != r2.Time || r1.Breakdown != r2.Breakdown {
			t.Errorf("%v: bound plan executed differently: %v vs %v", pat, r1, r2)
		}
	}
}

func TestBlueprintBindRejectsMismatchedTopology(t *testing.T) {
	src := testNet(t, 256)
	plan, err := PlanFor(src, testReq(collective.AllReduce, 256, 32<<10))
	if err != nil {
		t.Fatal(err)
	}
	bp, err := BlueprintOf(plan, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bp.Bind(testNet(t, 64)); err == nil {
		t.Fatal("bound a 256-DPU blueprint to a 64-DPU network")
	}
}

func TestBlueprintBindRejectsFaultedNetwork(t *testing.T) {
	src := testNet(t, 256)
	plan, err := PlanFor(src, testReq(collective.AllReduce, 256, 32<<10))
	if err != nil {
		t.Fatal(err)
	}
	bp, err := BlueprintOf(plan, src)
	if err != nil {
		t.Fatal(err)
	}
	dst := testNet(t, 256)
	dst.ringHop[0][0][0].Degrade(0.5)
	if !dst.Pristine() {
		// expected: degraded link breaks pristinity
	} else {
		t.Fatal("degraded network still pristine")
	}
	if _, err := bp.Bind(dst); err == nil {
		t.Fatal("bound a cached plan to a faulted network")
	}
	dst.ringHop[0][0][0].Restore()
	if !dst.Pristine() {
		t.Fatal("restored network not pristine")
	}
	if _, err := bp.Bind(dst); err != nil {
		t.Fatalf("restored network refused bind: %v", err)
	}
}

func TestPlanCacheCounters(t *testing.T) {
	c := NewPlanCache()
	n := testNet(t, 64)
	req := testReq(collective.AllReduce, 64, 4096)

	if _, err := PlanVia(c, n, req); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Hits != 0 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("after first compile: %+v", s)
	}
	if _, err := PlanVia(c, n, req); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("after repeat: %+v", s)
	}
	// A different request is a different key.
	if _, err := PlanVia(c, n, testReq(collective.AllGather, 64, 4096)); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Misses != 2 || s.Entries != 2 {
		t.Fatalf("after second pattern: %+v", s)
	}
	c.Reset()
	if s := c.Stats(); s != (CacheStats{}) {
		t.Fatalf("after reset: %+v", s)
	}
}

// TestPlanViaBypassesFaultedNetwork: a non-pristine network must neither
// read from nor write to the shared cache — fault recompilation stays
// outside it.
func TestPlanViaBypassesFaultedNetwork(t *testing.T) {
	c := NewPlanCache()
	n := testNet(t, 64)
	req := testReq(collective.AllReduce, 64, 4096)
	n.ringHop[0][0][0].Degrade(0.25)

	plan, err := PlanVia(c, n, req)
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil {
		t.Fatal("nil plan")
	}
	if s := c.Stats(); s.Hits != 0 || s.Misses != 0 || s.Entries != 0 {
		t.Fatalf("faulted network touched the cache: %+v", s)
	}
	// Restoration re-enables caching (the ClearFaults story).
	n.ringHop[0][0][0].Restore()
	if _, err := PlanVia(c, n, req); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("restored network not cached: %+v", s)
	}
}

func TestPlanViaNilCache(t *testing.T) {
	n := testNet(t, 64)
	plan, err := PlanVia(nil, n, testReq(collective.AllReduce, 64, 4096))
	if err != nil || plan == nil {
		t.Fatalf("nil-cache compile: %v %v", plan, err)
	}
}

// TestKeyForDistinguishesStepOverhead: the same request on the same system
// with a different per-step overhead must occupy a distinct cache slot —
// the A1 ablation depends on this.
func TestKeyForDistinguishesStepOverhead(t *testing.T) {
	a := testNet(t, 64)
	b := testNet(t, 64)
	b.SetStepOverhead(1000)
	req := testReq(collective.AllReduce, 64, 4096)
	if KeyFor(a, req) == KeyFor(b, req) {
		t.Fatal("step overhead not part of the cache key")
	}
	if KeyFor(a, req) != KeyFor(testNet(t, 64), req) {
		t.Fatal("identical configurations produced distinct keys")
	}
}

// FuzzPlanCacheKey locks in the collision-freedom of the cache key: two
// (config, request, overhead) tuples map to the same key exactly when they
// are field-for-field equal. The key is a comparable struct, so Go's map
// semantics guarantee this; the fuzz target exists to catch a future
// refactor that replaces the struct key with a lossy digest.
func FuzzPlanCacheKey(f *testing.F) {
	f.Add(int64(32<<10), 64, 0, int64(0), int64(4096), 256, 1, int64(100))
	f.Add(int64(4096), 256, 1, int64(100), int64(4096), 256, 1, int64(100))
	f.Add(int64(0), 1, 3, int64(-1), int64(1), 2, 2, int64(7))
	f.Fuzz(func(t *testing.T, bytesA int64, nodesA, patA int, ohA int64,
		bytesB int64, nodesB, patB int, ohB int64) {
		sys := config.Default()
		mkKey := func(bytes int64, nodes, pat int, oh int64) PlanKey {
			return PlanKey{
				Sys: sys,
				Req: collective.Request{Pattern: collective.Pattern(pat % 8), Op: collective.Sum,
					BytesPerNode: bytes, ElemSize: 4, Nodes: nodes},
				StepOverheadPs: oh,
			}
		}
		ka := mkKey(bytesA, nodesA, patA, ohA)
		kb := mkKey(bytesB, nodesB, patB, ohB)
		tupleEqual := bytesA == bytesB && nodesA == nodesB && patA%8 == patB%8 && ohA == ohB

		if (ka == kb) != tupleEqual {
			t.Fatalf("key equality %v but tuple equality %v\nka=%+v\nkb=%+v",
				ka == kb, tupleEqual, ka, kb)
		}
		// And the map behaves accordingly: inserting under ka hits on kb
		// exactly when the tuples are equal.
		c := NewPlanCache()
		c.Insert(ka, &Blueprint{})
		_, ok := c.Lookup(kb)
		if ok != tupleEqual {
			t.Fatalf("cache hit=%v for tuple equality %v", ok, tupleEqual)
		}
	})
}

// TestKeyForSystemMatchesKeyFor: the network-free key path the serving tier
// uses must agree with the key a built network produces, for both the default
// and a configured step overhead.
func TestKeyForSystemMatchesKeyFor(t *testing.T) {
	n := testNet(t, 64)
	req := testReq(collective.AllReduce, 64, 4096)
	if got, want := KeyForSystem(n.Sys, req, 0), KeyFor(n, req); got != want {
		t.Fatalf("KeyForSystem = %+v, KeyFor = %+v", got, want)
	}
	n.SetStepOverhead(250)
	if got, want := KeyForSystem(n.Sys, req, 250), KeyFor(n, req); got != want {
		t.Fatalf("with overhead: KeyForSystem = %+v, KeyFor = %+v", got, want)
	}
}

// TestPlanKeyDigest: equal keys digest identically; any single-parameter
// change produces a different digest.
func TestPlanKeyDigest(t *testing.T) {
	n := testNet(t, 64)
	req := testReq(collective.AllReduce, 64, 4096)
	k := KeyFor(n, req)
	if k.Digest() != KeyForSystem(n.Sys, req, 0).Digest() {
		t.Fatal("equal keys digest differently")
	}
	variants := []PlanKey{
		KeyForSystem(n.Sys, testReq(collective.AllGather, 64, 4096), 0),
		KeyForSystem(n.Sys, testReq(collective.AllReduce, 64, 8192), 0),
		KeyForSystem(n.Sys, req, 77),
	}
	seen := map[string]bool{k.Digest(): true}
	for i, v := range variants {
		d := v.Digest()
		if seen[d] {
			t.Fatalf("variant %d digest collides: %s", i, d)
		}
		seen[d] = true
	}
}
