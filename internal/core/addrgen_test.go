package core

import (
	"testing"

	"pimnet/internal/collective"
	"pimnet/internal/config"
	"pimnet/internal/sim"
)

func addrParams() AddrParams {
	return AddrParams{
		Banks: 8, Chips: 8, Ranks: 4,
		Bank: 3, Chip: 2, Rank: 1,
		DataBytes: 32 << 10,
		BaseAddr:  0x1000,
		Times: PhaseTimes{
			RSBank: 10 * sim.Microsecond,
			RSChip: 20 * sim.Microsecond,
			RSRank: 5 * sim.Microsecond,
			AGRank: 5 * sim.Microsecond,
			AGChip: 20 * sim.Microsecond,
			AGBank: 10 * sim.Microsecond,
		},
	}
}

func TestAlgorithm1BankDomain(t *testing.T) {
	p := addrParams()
	rs, err := ScheduleAllReduce(DomainBank, PhaseRS, p)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: offset = 0, Addr_s = Addr_B + D/N_B * I_B.
	if rs.Offset != 0 {
		t.Fatalf("bank RS offset = %v, want 0", rs.Offset)
	}
	wantAddr := p.BaseAddr + (p.DataBytes/8)*3
	if rs.StartAddr != wantAddr {
		t.Fatalf("bank RS addr = %#x, want %#x", rs.StartAddr, wantAddr)
	}
	ag, err := ScheduleAllReduce(DomainBank, PhaseAG, p)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: offset = T_RS_B + T_RS_C + T_RS_R + T_AG_R + T_AG_C.
	wantOff := 10*sim.Microsecond + 20*sim.Microsecond + 5*sim.Microsecond +
		5*sim.Microsecond + 20*sim.Microsecond
	if ag.Offset != wantOff {
		t.Fatalf("bank AG offset = %v, want %v", ag.Offset, wantOff)
	}
	// Addr_s = Addr_B + D/N_B * ((I_B + N_B - 1) % N_B) = chunk 2.
	wantAddr = p.BaseAddr + (p.DataBytes/8)*2
	if ag.StartAddr != wantAddr {
		t.Fatalf("bank AG addr = %#x, want %#x", ag.StartAddr, wantAddr)
	}
}

func TestAlgorithm1OffsetsOrdered(t *testing.T) {
	// Phase start offsets must be nondecreasing along the pipeline:
	// bank RS <= chip RS <= rank RS <= rank AG <= chip AG <= bank AG.
	p := addrParams()
	var offs []sim.Time
	for _, dp := range []struct {
		d  Domain
		ph PhaseKind
	}{
		{DomainBank, PhaseRS}, {DomainChip, PhaseRS}, {DomainRank, PhaseRS},
		{DomainRank, PhaseAG}, {DomainChip, PhaseAG}, {DomainBank, PhaseAG},
	} {
		s, err := ScheduleAllReduce(dp.d, dp.ph, p)
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, s.Offset)
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] < offs[i-1] {
			t.Fatalf("offsets not ordered: %v", offs)
		}
	}
}

func TestAlgorithm1AddressesInBounds(t *testing.T) {
	p := addrParams()
	for bank := 0; bank < p.Banks; bank++ {
		for chip := 0; chip < p.Chips; chip++ {
			q := p
			q.Bank, q.Chip = bank, chip
			for _, d := range []Domain{DomainBank, DomainChip, DomainRank} {
				for _, ph := range []PhaseKind{PhaseRS, PhaseAG} {
					s, err := ScheduleAllReduce(d, ph, q)
					if err != nil {
						t.Fatal(err)
					}
					if s.StartAddr < p.BaseAddr || s.StartAddr >= p.BaseAddr+p.DataBytes {
						t.Fatalf("domain %v phase %v bank %d chip %d: addr %#x out of payload",
							d, ph, bank, chip, s.StartAddr)
					}
				}
			}
		}
	}
}

func TestAlgorithm1BankAddressesDistinct(t *testing.T) {
	// Within one chip, the RS start addresses of all banks must be distinct
	// (each bank starts from its own chunk).
	p := addrParams()
	seen := map[int64]bool{}
	for bank := 0; bank < p.Banks; bank++ {
		q := p
		q.Bank = bank
		s, err := ScheduleAllReduce(DomainBank, PhaseRS, q)
		if err != nil {
			t.Fatal(err)
		}
		if seen[s.StartAddr] {
			t.Fatalf("duplicate RS start address %#x", s.StartAddr)
		}
		seen[s.StartAddr] = true
	}
}

func TestAlgorithm1Validation(t *testing.T) {
	bad := []AddrParams{
		{Banks: 0, Chips: 1, Ranks: 1},
		{Banks: 8, Chips: 8, Ranks: 4, Bank: 8},
		{Banks: 8, Chips: 8, Ranks: 4, Chip: -1},
		{Banks: 8, Chips: 8, Ranks: 4, Rank: 4},
		{Banks: 8, Chips: 8, Ranks: 4, DataBytes: -2},
	}
	for i, p := range bad {
		if _, err := ScheduleAllReduce(DomainBank, PhaseRS, p); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	if _, err := ScheduleAllReduce(Domain(9), PhaseRS, addrParams()); err == nil {
		t.Error("unknown domain accepted")
	}
}

func TestAllToAllSendAddrs(t *testing.T) {
	addrs := AllToAllSendAddrs(0x2000, 1024, 8)
	if len(addrs) != 8 {
		t.Fatalf("len = %d", len(addrs))
	}
	if addrs[0] != 0x2000 {
		t.Fatalf("addr[0] = %#x", addrs[0])
	}
	for j := 1; j < 8; j++ {
		if addrs[j] <= addrs[j-1] {
			t.Fatalf("addresses not strictly increasing: %v", addrs)
		}
	}
	if addrs[7] >= 0x2000+1024 {
		t.Fatalf("addr[7] = %#x beyond payload", addrs[7])
	}
}

func TestPhaseTimesFromPlan(t *testing.T) {
	sys, _ := config.Default().WithDPUs(256)
	net, err := NewNetwork(sys)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanFor(net, collective.Request{Pattern: collective.AllReduce,
		Op: collective.Sum, BytesPerNode: 32 << 10, ElemSize: 4, Nodes: 256})
	if err != nil {
		t.Fatal(err)
	}
	pt := PhaseTimesFromPlan(net, plan)
	if pt.RSBank <= 0 || pt.RSChip <= 0 || pt.RSRank <= 0 || pt.AGChip <= 0 || pt.AGBank <= 0 {
		t.Fatalf("phase times incomplete: %+v", pt)
	}
	// RS and AG mirror volumes on bank/chip tiers; AG has no reduce, so it
	// can only be as fast or faster.
	if pt.AGBank > pt.RSBank {
		t.Fatalf("bank AG (%v) slower than bank RS (%v)", pt.AGBank, pt.RSBank)
	}
	if pt.AGChip > pt.RSChip {
		t.Fatalf("chip AG (%v) slower than chip RS (%v)", pt.AGChip, pt.RSChip)
	}
	// The extracted phase times must feed Algorithm 1 consistently: the AG
	// offset equals the sum of everything before it.
	s, err := ScheduleAllReduce(DomainBank, PhaseAG, AddrParams{
		Banks: 8, Chips: 8, Ranks: 4, DataBytes: 32 << 10, Times: pt,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := pt.RSBank + pt.RSChip + pt.RSRank + pt.AGRank + pt.AGChip
	if s.Offset != want {
		t.Fatalf("AG offset %v != phase sum %v", s.Offset, want)
	}
}
