package core

import (
	"strings"
	"testing"

	"pimnet/internal/collective"
	"pimnet/internal/config"
	"pimnet/internal/faults"
	"pimnet/internal/host"
	"pimnet/internal/machine"
	"pimnet/internal/metrics"
	"pimnet/internal/sim"
)

func ftSys(t *testing.T, dpus int) config.System {
	t.Helper()
	sys, err := config.Default().WithDPUs(dpus)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func ftReq(bytes int64) collective.Request {
	return collective.Request{Pattern: collective.AllReduce, Op: collective.Sum,
		BytesPerNode: bytes, ElemSize: 4, Nodes: 256}
}

func healthyResult(t *testing.T, sys config.System, req collective.Request) sim.Time {
	t.Helper()
	p, err := NewPIMnet(sys)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Collective(req)
	if err != nil {
		t.Fatal(err)
	}
	return res.Time
}

// faultyPIMnet arms a PIMnet with a hand-built fault list and the baseline
// fallback.
func faultyPIMnet(t *testing.T, sys config.System, m *faults.Model) *PIMnet {
	t.Helper()
	p, err := NewPIMnet(sys)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := host.NewBaseline(sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.EnableFaults(m, fb); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestRecompileAroundDeadChipPath is the issue's acceptance scenario: one
// hard inter-chip failure on the compiled ring; the AllReduce must complete
// via a recompiled plan, bit-correct, strictly slower than healthy, with the
// detection and recompilation counters incremented.
func TestRecompileAroundDeadChipPath(t *testing.T) {
	sys := ftSys(t, 256)
	req := ftReq(32 << 10)
	healthy := healthyResult(t, sys, req)

	// Stuck pairing 0->1 in rank 3 — an adjacency every compiled chip ring
	// uses, so the pristine plan must time out on it.
	m := &faults.Model{Spec: faults.Spec{Seed: 4}, Faults: []faults.Fault{
		{Class: faults.LinkFail, Site: faults.SiteChipPath, Rank: 3, Chip: 0, Index: 1},
	}}
	p := faultyPIMnet(t, sys, m)
	res, err := p.Collective(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= healthy {
		t.Fatalf("recovered latency %v not strictly above healthy %v", res.Time, healthy)
	}
	if got := res.Breakdown.Get(metrics.Recovery); got == 0 {
		t.Fatal("no time charged to the recovery component")
	}
	fc := p.FaultCounters()
	if fc.Detected != 1 || fc.Recompiled != 1 {
		t.Fatalf("counters %v, want detected=1 recompiled=1", fc)
	}
	if fc.Degraded != 0 {
		t.Fatalf("counters %v: recompilation should not count as degradation to fallback", fc)
	}
	if !p.DegradedMode() {
		t.Fatal("backend not reporting degraded mode after recompilation")
	}
	// The recovered schedule must match the data-level interpreter
	// bit-for-bit (faultCollective verified internally; re-check here).
	if err := collective.Verify(req, 4, 8, 8, m.Spec.Seed); err != nil {
		t.Fatalf("interpreter verification: %v", err)
	}

	// The host caches the recompiled route: a second invocation skips
	// detection entirely and — since the reordered ring is a pure
	// relabeling — runs at healthy speed.
	res2, err := p.Collective(req)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Time != healthy {
		t.Fatalf("cached recompiled plan ran at %v, want healthy %v", res2.Time, healthy)
	}
	if fc2 := p.FaultCounters(); fc2.Detected != 1 || fc2.Recompiled != 1 {
		t.Fatalf("second invocation re-detected: %v", fc2)
	}
}

// TestRerouteFailedRingSegment: a hard-failed inter-bank ring segment is
// routed the long way around the surviving segments.
func TestRerouteFailedRingSegment(t *testing.T) {
	sys := ftSys(t, 256)
	req := ftReq(32 << 10)
	healthy := healthyResult(t, sys, req)

	m := &faults.Model{Spec: faults.Spec{Seed: 9}, Faults: []faults.Fault{
		{Class: faults.LinkFail, Site: faults.SiteRing, Rank: 0, Chip: 2, Index: 3},
	}}
	p := faultyPIMnet(t, sys, m)
	res, err := p.Collective(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= healthy {
		t.Fatalf("rerouted latency %v not above healthy %v", res.Time, healthy)
	}
	fc := p.FaultCounters()
	if fc.Detected != 1 || fc.Recompiled != 1 || fc.Degraded != 0 {
		t.Fatalf("counters %v, want detected=1 recompiled=1 degraded=0", fc)
	}
	// Second invocation rides the cached rerouted plan without detection.
	if _, err := p.Collective(req); err != nil {
		t.Fatal(err)
	}
	if fc2 := p.FaultCounters(); fc2.Detected != 1 {
		t.Fatalf("cached reroute re-detected: %v", fc2)
	}
}

// TestRingDisconnected: two failures in one ring strand banks, so the
// recompiler must fall back to the host relay.
func TestRingDisconnected(t *testing.T) {
	sys := ftSys(t, 256)
	req := ftReq(4 << 10)
	m := &faults.Model{Spec: faults.Spec{Seed: 1}, Faults: []faults.Fault{
		{Class: faults.LinkFail, Site: faults.SiteRing, Rank: 0, Chip: 0, Index: 1},
		{Class: faults.LinkFail, Site: faults.SiteRing, Rank: 0, Chip: 0, Index: 5},
	}}
	p := faultyPIMnet(t, sys, m)
	res, err := p.Collective(req)
	if err != nil {
		t.Fatal(err)
	}
	fc := p.FaultCounters()
	if fc.Degraded != 1 {
		t.Fatalf("counters %v, want degraded=1 (host-relay fallback)", fc)
	}
	// The fallback path must show host involvement in the breakdown.
	if res.Breakdown.Get(metrics.HostXfer) == 0 {
		t.Fatalf("fallback breakdown has no host transfer time: %v", res.Breakdown.String())
	}
}

// TestCorruptionRetry: a single transient corruption costs one wasted
// attempt plus backoff, then the retry delivers.
func TestCorruptionRetry(t *testing.T) {
	sys := ftSys(t, 256)
	req := ftReq(8 << 10)
	healthy := healthyResult(t, sys, req)

	m := &faults.Model{Spec: faults.Spec{Seed: 2, CorruptProb: 1}, Faults: []faults.Fault{
		{Class: faults.TransientCorrupt, Prob: 1},
	}}
	m.CorruptFn = func(inv, attempt int) bool { return attempt == 0 }
	p := faultyPIMnet(t, sys, m)
	res, err := p.Collective(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= healthy {
		t.Fatalf("retried latency %v not above healthy %v", res.Time, healthy)
	}
	fc := p.FaultCounters()
	if fc.Detected != 1 || fc.Retried != 1 || fc.Recompiled != 0 {
		t.Fatalf("counters %v, want detected=1 retried=1", fc)
	}
}

// TestCorruptionExhaustsRetries: persistent corruption degrades to the
// host-relay fallback after the retry budget.
func TestCorruptionExhaustsRetries(t *testing.T) {
	sys := ftSys(t, 256)
	req := ftReq(4 << 10)
	m := &faults.Model{Spec: faults.Spec{Seed: 3, CorruptProb: 1}, Faults: []faults.Fault{
		{Class: faults.TransientCorrupt, Prob: 1},
	}}
	m.CorruptFn = func(inv, attempt int) bool { return true }
	p := faultyPIMnet(t, sys, m)
	if _, err := p.Collective(req); err != nil {
		t.Fatal(err)
	}
	fc := p.FaultCounters()
	if fc.Degraded != 1 {
		t.Fatalf("counters %v, want degraded=1 after exhausted retries", fc)
	}
	if fc.Retried != maxRetries {
		t.Fatalf("counters %v, want retried=%d", fc, maxRetries)
	}
}

// TestSyncDropRelaunch: a lost READY/START launch is re-launched after the
// watchdog timeout.
func TestSyncDropRelaunch(t *testing.T) {
	sys := ftSys(t, 256)
	req := ftReq(4 << 10)
	healthy := healthyResult(t, sys, req)

	m := &faults.Model{Spec: faults.Spec{Seed: 5, SyncDropProb: 1}, Faults: []faults.Fault{
		{Class: faults.SyncDrop, Prob: 1},
	}}
	m.SyncFn = func(inv, attempt int) bool { return attempt == 0 }
	p := faultyPIMnet(t, sys, m)
	res, err := p.Collective(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= healthy {
		t.Fatalf("relaunched latency %v not above healthy %v", res.Time, healthy)
	}
	if fc := p.FaultCounters(); fc.Retried != 1 || fc.Detected != 1 {
		t.Fatalf("counters %v, want detected=1 retried=1", fc)
	}

	// A launch that never lands is a hard error, not an infinite loop.
	m2 := &faults.Model{Spec: faults.Spec{Seed: 5, SyncDropProb: 1}}
	m2.SyncFn = func(inv, attempt int) bool { return true }
	p2 := faultyPIMnet(t, sys, m2)
	if _, err := p2.Collective(req); err == nil {
		t.Fatal("permanently lost launch did not error")
	}
}

// TestDegradedLinkSoftAccept: a badly degraded link trips the watchdog once;
// the runtime then accepts degraded timing without recompiling (the topology
// is still connected) and stops re-detecting.
func TestDegradedLinkSoftAccept(t *testing.T) {
	sys := ftSys(t, 256)
	req := ftReq(32 << 10)
	healthy := healthyResult(t, sys, req)

	m := &faults.Model{Spec: faults.Spec{Seed: 6, DegradedLinks: 1}, Faults: []faults.Fault{
		{Class: faults.LinkDegrade, Site: faults.SiteRing, Rank: 1, Chip: 1, Index: 0, Factor: 0.1},
	}}
	p := faultyPIMnet(t, sys, m)
	res, err := p.Collective(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= healthy {
		t.Fatalf("degraded latency %v not above healthy %v", res.Time, healthy)
	}
	fc := p.FaultCounters()
	if fc.Detected != 1 || fc.Degraded != 1 || fc.Recompiled != 0 {
		t.Fatalf("counters %v, want detected=1 degraded=1 recompiled=0", fc)
	}
	if _, err := p.Collective(req); err != nil {
		t.Fatal(err)
	}
	if fc2 := p.FaultCounters(); fc2.Detected != 1 {
		t.Fatalf("soft-accepted network re-detected: %v", fc2)
	}
}

// TestStragglerDetection: an extreme straggler stretches reductions past the
// guard band; the network is connected, so the run is accepted degraded.
func TestStragglerDetection(t *testing.T) {
	sys := ftSys(t, 256)
	req := ftReq(32 << 10)
	healthy := healthyResult(t, sys, req)

	m := &faults.Model{Spec: faults.Spec{Seed: 8, Stragglers: 1, StragglerFactor: 1000},
		Faults: []faults.Fault{{Class: faults.Straggler, Node: 17, Factor: 1000}}}
	p := faultyPIMnet(t, sys, m)
	res, err := p.Collective(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= healthy {
		t.Fatalf("straggler latency %v not above healthy %v", res.Time, healthy)
	}
	if fc := p.FaultCounters(); fc.Detected == 0 {
		t.Fatalf("straggler escaped detection: %v", fc)
	}
	if got := p.ComputeSlowdown(); got != 1000 {
		t.Fatalf("ComputeSlowdown = %v, want 1000", got)
	}
}

// TestAllToAllDeadPathFallsBack: AllToAll uses every crossbar pairing, so no
// ring reordering can exclude a stuck one — the ladder must fall back.
func TestAllToAllDeadPathFallsBack(t *testing.T) {
	sys := ftSys(t, 256)
	req := collective.Request{Pattern: collective.AllToAll, Op: collective.Sum,
		BytesPerNode: 8 << 10, ElemSize: 4, Nodes: 256}
	m := &faults.Model{Spec: faults.Spec{Seed: 4}, Faults: []faults.Fault{
		{Class: faults.LinkFail, Site: faults.SiteChipPath, Rank: 3, Chip: 0, Index: 1},
	}}
	p := faultyPIMnet(t, sys, m)
	res, err := p.Collective(req)
	if err != nil {
		t.Fatal(err)
	}
	fc := p.FaultCounters()
	if fc.Degraded != 1 || fc.Recompiled != 0 {
		t.Fatalf("counters %v, want degraded=1 recompiled=0", fc)
	}
	if res.Breakdown.Get(metrics.HostXfer) == 0 {
		t.Fatalf("fallback breakdown missing host transfer: %v", res.Breakdown.String())
	}
}

// TestEmptyModelKeepsHealthyTiming: with the fault machinery armed but no
// faults injected, every latency must be identical to the plain backend.
func TestEmptyModelKeepsHealthyTiming(t *testing.T) {
	sys := ftSys(t, 256)
	m := &faults.Model{Spec: faults.Spec{Seed: 1}}
	p := faultyPIMnet(t, sys, m)
	for _, pat := range []collective.Pattern{collective.AllReduce, collective.ReduceScatter,
		collective.AllGather, collective.AllToAll, collective.Broadcast} {
		req := collective.Request{Pattern: pat, Op: collective.Sum,
			BytesPerNode: 16 << 10, ElemSize: 4, Nodes: 256}
		want := healthyResult(t, sys, req)
		res, err := p.Collective(req)
		if err != nil {
			t.Fatalf("%v: %v", pat, err)
		}
		if res.Time != want {
			t.Fatalf("%v: faulted-but-healthy %v != healthy %v", pat, res.Time, want)
		}
	}
	if fc := p.FaultCounters(); fc.Any() {
		t.Fatalf("counters nonzero on empty model: %v", fc)
	}
}

// TestChipOrderAvoiding exercises the recompiler's ring-order search.
func TestChipOrderAvoiding(t *testing.T) {
	dead := map[chipPath]bool{{rank: 0, src: 0, dst: 1}: true}
	order, ok := chipOrderAvoiding(8, dead)
	if !ok {
		t.Fatal("no order found around a single dead pairing")
	}
	if len(order) != 8 || order[0] != 0 {
		t.Fatalf("malformed order %v", order)
	}
	seen := make(map[int]bool)
	for i, c := range order {
		if seen[c] {
			t.Fatalf("order %v repeats chip %d", order, c)
		}
		seen[c] = true
		next := order[(i+1)%len(order)]
		if c == 0 && next == 1 {
			t.Fatalf("order %v still uses dead adjacency 0->1", order)
		}
	}

	// chips=2 with a dead pairing: both ring directions are needed, so no
	// order exists.
	if _, ok := chipOrderAvoiding(2, dead); ok {
		t.Fatal("found an order for 2 chips with a dead pairing")
	}

	// Fully dead crossbar: impossible.
	all := make(map[chipPath]bool)
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			if a != b {
				all[chipPath{0, a, b}] = true
			}
		}
	}
	if _, ok := chipOrderAvoiding(4, all); ok {
		t.Fatal("found an order through a fully dead crossbar")
	}
}

// TestPlanForDegradedDisconnected: unroutable hard faults must error so the
// ladder can fall back.
func TestPlanForDegradedDisconnected(t *testing.T) {
	sys := ftSys(t, 256)
	n, err := NewNetwork(sys)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{0, 4} {
		if err := n.ApplyFault(faults.Fault{Class: faults.LinkFail, Site: faults.SiteRing,
			Rank: 0, Chip: 0, Index: idx}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := PlanForDegraded(n, ftReq(4<<10)); err == nil {
		t.Fatal("disconnected ring recompiled successfully")
	} else if !strings.Contains(err.Error(), "disconnected") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestApplyFaultValidation: malformed fault coordinates must be rejected.
func TestApplyFaultValidation(t *testing.T) {
	sys := ftSys(t, 256)
	n, err := NewNetwork(sys)
	if err != nil {
		t.Fatal(err)
	}
	bad := []faults.Fault{
		{Class: faults.LinkFail, Site: faults.SiteRing, Rank: 99, Chip: 0, Index: 0},
		{Class: faults.LinkFail, Site: faults.SiteRing, Rank: 0, Chip: 99, Index: 0},
		{Class: faults.LinkFail, Site: faults.SiteRing, Rank: 0, Chip: 0, Index: 99},
		{Class: faults.LinkFail, Site: faults.SiteChipPath, Rank: 0, Chip: 3, Index: 3},
		{Class: faults.LinkFail, Site: faults.SiteChipPath, Rank: 0, Chip: 0, Index: 99},
		{Class: faults.LinkDegrade, Site: faults.SiteBus, Factor: 1.5},
		{Class: faults.LinkDegrade, Site: faults.SiteBus, Factor: 0},
	}
	for i, f := range bad {
		if err := n.ApplyFault(f); err == nil {
			t.Errorf("bad fault %d (%v) accepted", i, f)
		}
	}
	// Non-network classes are accepted as no-ops.
	if err := n.ApplyFault(faults.Fault{Class: faults.Straggler, Node: 1, Factor: 2}); err != nil {
		t.Fatalf("straggler no-op rejected: %v", err)
	}
	// ClearFaults restores everything.
	if err := n.ApplyFault(faults.Fault{Class: faults.LinkFail, Site: faults.SiteBus}); err != nil {
		t.Fatal(err)
	}
	if !n.hasHardFaults() {
		t.Fatal("failed bus not reported as hard fault")
	}
	n.ClearFaults()
	if n.hasHardFaults() {
		t.Fatal("ClearFaults left hard faults behind")
	}
}

// TestFaultDeterminism is the regression test from the issue: the same
// workload with the same fault seed, run on two independently constructed
// stacks, must produce byte-identical reports.
func TestFaultDeterminism(t *testing.T) {
	sys := ftSys(t, 256)
	spec := faults.Spec{Seed: 4, FailedChipPaths: 1, DegradedLinks: 2, CorruptProb: 0.3, Stragglers: 1}
	wl := machine.Workload{Name: "fault-determinism", Phases: []machine.Phase{
		{Name: "ar", Collective: &collective.Request{Pattern: collective.AllReduce,
			Op: collective.Sum, BytesPerNode: 16 << 10, ElemSize: 4, Nodes: 256}, Repeat: 2},
		{Name: "ag", Collective: &collective.Request{Pattern: collective.AllGather,
			Op: collective.Sum, BytesPerNode: 8 << 10, ElemSize: 4, Nodes: 256}},
	}}
	runOnce := func() machine.Report {
		t.Helper()
		model, err := faults.New(spec, sys.Ranks, sys.ChipsPerRank, sys.BanksPerChip)
		if err != nil {
			t.Fatal(err)
		}
		p := faultyPIMnet(t, sys, model)
		mach, err := machine.New(sys, p)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := mach.Run(wl)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Fatalf("same seed diverged:\n  %+v\n  %+v", a, b)
	}
	if !a.Faults.Any() {
		t.Fatalf("fault workload reported no fault activity: %+v", a)
	}
}

// TestTimedFaultActivation: a fault scheduled mid-run (At > 0) fires at a
// step boundary and is detected like a static one.
func TestTimedFaultActivation(t *testing.T) {
	sys := ftSys(t, 256)
	req := ftReq(32 << 10)
	healthy := healthyResult(t, sys, req)

	m := &faults.Model{Spec: faults.Spec{Seed: 11}, Faults: []faults.Fault{
		{Class: faults.LinkFail, Site: faults.SiteRing, Rank: 0, Chip: 0, Index: 0,
			At: healthy / 2},
	}}
	p := faultyPIMnet(t, sys, m)
	res, err := p.Collective(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= healthy {
		t.Fatalf("mid-run failure latency %v not above healthy %v", res.Time, healthy)
	}
	fc := p.FaultCounters()
	if fc.Detected == 0 || fc.Recompiled == 0 {
		t.Fatalf("timed fault not detected/recompiled: %v", fc)
	}
}
