package core

import (
	"encoding/json"
	"errors"
	"fmt"
)

// This file is the serialization boundary of the plan cache: the persistent
// store (internal/store) holds blueprints as bytes, and this codec is the
// only way across. The envelope embeds the blueprint's own digest so a
// decoded artifact proves it is the schedule that was encoded — a second,
// independent line of defense behind the store's blob-level checksum (the
// blob digest guards the bytes; the envelope digest guards the semantics,
// catching codec drift the store cannot see).

// blueprintEnvelope is the persisted wire form of one blueprint.
type blueprintEnvelope struct {
	// Digest is Blueprint.Digest() of the payload, re-derived and compared
	// on decode.
	Digest    string     `json:"digest"`
	Blueprint *Blueprint `json:"blueprint"`
}

// EncodeBlueprint renders bp as a self-verifying envelope. Blueprints
// contain only scalars and slices, so encoding is deterministic:
// encode -> decode -> encode is byte-identical (FuzzStoreRoundTrip locks
// this in from the store side).
func EncodeBlueprint(bp *Blueprint) ([]byte, error) {
	if bp == nil {
		return nil, errors.New("core: cannot encode nil blueprint")
	}
	return json.Marshal(blueprintEnvelope{Digest: bp.Digest(), Blueprint: bp})
}

// DecodeBlueprint parses an envelope and verifies it: the payload must
// decode, carry a blueprint, and re-digest to the embedded digest. It never
// panics on arbitrary bytes and never returns a blueprint that is not
// bit-for-bit the schedule EncodeBlueprint saw.
func DecodeBlueprint(data []byte) (*Blueprint, error) {
	var env blueprintEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("core: blueprint envelope: %w", err)
	}
	if env.Blueprint == nil {
		return nil, errors.New("core: blueprint envelope has no blueprint")
	}
	if got := env.Blueprint.Digest(); got != env.Digest {
		return nil, fmt.Errorf("core: blueprint digest mismatch: envelope %.12s.., payload %.12s..", env.Digest, got)
	}
	return env.Blueprint, nil
}
