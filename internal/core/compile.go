package core

import (
	"fmt"

	"pimnet/internal/collective"
)

// chunkBytes returns the size of balanced chunk i when total bytes are split
// n ways, using the same floor split as the data interpreter.
func chunkBytes(total int64, n, i int) int64 {
	lo, hi := collective.ChunkBounds(int(total), n, i)
	return int64(hi - lo)
}

// ownedShardBytes returns the byte count of the reduced-vector shard owned
// by (chip, bank) after the hierarchical reduce-scatter phases.
func ownedShardBytes(total int64, chips, banks, chip, bank int) int64 {
	lo, hi := collective.OwnedShard(int(total), chips, banks, chip, bank)
	return int64(hi - lo)
}

// chipShardBytes returns the total shard bytes owned by one chip (the sum
// over its banks), the volume it contributes to each inter-rank broadcast.
func chipShardBytes(total int64, chips, banks, chip int) int64 {
	var s int64
	for b := 0; b < banks; b++ {
		s += ownedShardBytes(total, chips, banks, chip, b)
	}
	return s
}

// PlanFor compiles a collective request into a statically scheduled PIMnet
// plan following the paper's Table V tier mappings. The request's scope must
// equal the network's full channel population: PIMnet interconnects the DPUs
// of one memory channel (Section III-B); multi-channel and sub-channel
// scoping are handled by the machine layer.
func PlanFor(n *Network, req collective.Request) (*Plan, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	topo := n.Topo
	if req.Nodes != topo.Nodes() {
		return nil, fmt.Errorf("core: request scope %d != channel population %d", req.Nodes, topo.Nodes())
	}
	p := &Plan{Req: req, Topo: topo}
	D := req.BytesPerNode
	switch req.Pattern {
	case collective.ReduceScatter:
		p.Phases = appendReducePhases(nil, n, D)
	case collective.AllReduce:
		p.Phases = appendReducePhases(nil, n, D)
		p.Phases = appendGatherBackPhases(p.Phases, n, D)
	case collective.AllGather:
		p.Phases = allGatherPhases(n, D)
	case collective.AllToAll:
		p.Phases = allToAllPhases(n, D)
	case collective.Broadcast:
		p.Phases = broadcastPhases(n, D)
	case collective.Gather, collective.Reduce:
		p.Phases = funnelPhases(n, D, req.Pattern == collective.Reduce)
	default:
		return nil, fmt.Errorf("core: pattern %v not schedulable", req.Pattern)
	}
	p.MemBytes = memStagingBytes(n, req)
	if err := p.CheckContention(); err != nil {
		return nil, err
	}
	return p, nil
}

// memStagingBytes returns the MRAM<->WRAM DMA volume per DPU. Collectives
// operate out of WRAM (Section V-A). The reducing patterns combine in place
// and all-to-all swaps blocks pair-wise without intermediate storage
// (Section V-D), so their working set is just the payload; only when it
// exceeds the usable scratchpad is the data staged from the DRAM bank and
// written back — the paper's "Mem" overhead, visible for CC, EMB_Synth,
// SpMV and Join in Fig. 11. Gathering patterns additionally spill their
// population-sized result.
func memStagingBytes(n *Network, req collective.Request) int64 {
	usable := n.Sys.DPU.WRAMBytes / 2
	D := req.BytesPerNode
	switch req.Pattern {
	case collective.AllGather, collective.Gather, collective.Reduce:
		result := D * int64(req.Nodes)
		if result <= usable {
			return 0
		}
		return D + result // read the contribution in, spill the result out
	default:
		if D <= usable {
			return 0
		}
		return 2 * D // stream in, write back in place
	}
}

// appendReducePhases emits the reduce-scatter pipeline of Table V:
// Ring(inter-bank) -> Ring(inter-chip) -> Broadcast(inter-rank).
func appendReducePhases(phases []Phase, n *Network, D int64) []Phase {
	topo := n.Topo
	b, c, r := topo.Banks, topo.Chips, topo.Ranks

	// Phase 1: ring reduce-scatter among the banks of every chip, all chips
	// in parallel — the PIM bandwidth parallelism the paper exploits.
	if b > 1 {
		ph := Phase{Name: "bank-RS", Tier: TierBank}
		for s := 0; s < collective.RingSteps(b); s++ {
			st := Step{}
			var maxRecv int64
			for rank := 0; rank < r; rank++ {
				for chip := 0; chip < c; chip++ {
					for bank := 0; bank < b; bank++ {
						send := chunkBytes(D, b, collective.RSSendChunk(b, bank, s))
						st.Transfers = append(st.Transfers, Transfer{
							Link: n.RingLink(rank, chip, bank), Kind: KindRing, Bytes: send,
						})
						recv := chunkBytes(D, b, collective.RSRecvChunk(b, bank, s))
						if recv > maxRecv {
							maxRecv = recv
						}
					}
				}
			}
			st.ReduceBytesPerNode = maxRecv
			ph.Steps = append(ph.Steps, st)
		}
		phases = append(phases, ph)
	}

	// Phase 2: ring reduce-scatter across the chips of every rank. Each
	// chip's banks stream their owned bank-chunk sub-chunks through the
	// chip's single DQ send channel into the crossbar; the crossbar is
	// configured as a ring, so each send and each receive port carries
	// exactly one aggregated transfer per step.
	if c > 1 {
		ph := Phase{Name: "chip-RS", Tier: TierChip}
		for s := 0; s < collective.RingSteps(c); s++ {
			st := Step{}
			var maxRecvPerNode int64
			for rank := 0; rank < r; rank++ {
				for chip := 0; chip < c; chip++ {
					var bytes int64
					for bank := 0; bank < b; bank++ {
						owned := chunkBytes(D, b, collective.OwnedAfterRS(b, bank))
						bytes += chunkBytes(owned, c, collective.RSSendChunk(c, chip, s))
					}
					succ := collective.RingSuccessor(c, chip)
					snd, rcv := n.chipPair(rank, chip, succ, bytes)
					st.Transfers = append(st.Transfers, snd, rcv)
					perNode := chunkBytes(chunkBytes(D, b, 0)+1, c, 0)
					if perNode > maxRecvPerNode {
						maxRecvPerNode = perNode
					}
				}
			}
			st.ReduceBytesPerNode = maxRecvPerNode
			ph.Steps = append(ph.Steps, st)
		}
		phases = append(phases, ph)
	}

	// Phase 3: inter-rank broadcast reduction on the shared DDR bus. Each
	// rank in turn broadcasts its reduced shard set (exactly D bytes per
	// rank); the matching DPUs of every other rank snoop the bus through
	// their chip receive channels and reduce. One broadcast per step keeps
	// the half-duplex bus single-mastered.
	if r > 1 {
		ph := Phase{Name: "rank-bcast-reduce", Tier: TierRank}
		for src := 0; src < r; src++ {
			st := Step{Transfers: []Transfer{{Link: n.Bus(), Kind: KindBus, Bytes: D}}}
			var maxShard int64
			for chip := 0; chip < c; chip++ {
				cs := chipShardBytes(D, c, b, chip)
				st.Transfers = append(st.Transfers, Transfer{
					Link: n.ChipSendLink(src, chip), Kind: KindCrossbarPort, Bytes: cs,
				})
				for rank := 0; rank < r; rank++ {
					if rank == src {
						continue
					}
					st.Transfers = append(st.Transfers, Transfer{
						Link: n.ChipRecvLink(rank, chip), Kind: KindCrossbarPort, Bytes: cs,
					})
				}
				for bank := 0; bank < b; bank++ {
					if sh := ownedShardBytes(D, c, b, chip, bank); sh > maxShard {
						maxShard = sh
					}
				}
			}
			st.ReduceBytesPerNode = maxShard
			ph.Steps = append(ph.Steps, st)
		}
		phases = append(phases, ph)
	}
	return phases
}

// appendGatherBackPhases emits the all-gather half of AllReduce: the exact
// mirror of the reduce phases with identical volumes and no reduction. The
// inter-rank hop is free — the bus broadcast-reduce already left every rank
// holding the reduced shards (Table V lists a single inter-rank stage).
func appendGatherBackPhases(phases []Phase, n *Network, D int64) []Phase {
	topo := n.Topo
	b, c, r := topo.Banks, topo.Chips, topo.Ranks

	if c > 1 {
		ph := Phase{Name: "chip-AG", Tier: TierChip}
		for s := 0; s < collective.RingSteps(c); s++ {
			st := Step{}
			for rank := 0; rank < r; rank++ {
				for chip := 0; chip < c; chip++ {
					var bytes int64
					for bank := 0; bank < b; bank++ {
						owned := chunkBytes(D, b, collective.OwnedAfterRS(b, bank))
						bytes += chunkBytes(owned, c, collective.AGSendChunk(c, chip, s))
					}
					succ := collective.RingSuccessor(c, chip)
					snd, rcv := n.chipPair(rank, chip, succ, bytes)
					st.Transfers = append(st.Transfers, snd, rcv)
				}
			}
			ph.Steps = append(ph.Steps, st)
		}
		phases = append(phases, ph)
	}

	if b > 1 {
		ph := Phase{Name: "bank-AG", Tier: TierBank}
		for s := 0; s < collective.RingSteps(b); s++ {
			st := Step{}
			for rank := 0; rank < r; rank++ {
				for chip := 0; chip < c; chip++ {
					for bank := 0; bank < b; bank++ {
						send := chunkBytes(D, b, collective.AGSendChunk(b, bank, s))
						st.Transfers = append(st.Transfers, Transfer{
							Link: n.RingLink(rank, chip, bank), Kind: KindRing, Bytes: send,
						})
					}
				}
			}
			ph.Steps = append(ph.Steps, st)
		}
		phases = append(phases, ph)
	}
	return phases
}

// allGatherPhases emits a standalone AllGather (Table V: Broadcast(rank) ->
// Ring(chip) -> Ring(bank)). Each node contributes D; every node ends with
// the P*D concatenation, so unlike the AllReduce mirror the volumes grow
// with the population.
func allGatherPhases(n *Network, D int64) []Phase {
	topo := n.Topo
	b, c, r := topo.Banks, topo.Chips, topo.Ranks
	P := int64(topo.Nodes())
	var phases []Phase

	if r > 1 {
		ph := Phase{Name: "rank-bcast", Tier: TierRank}
		rankBytes := int64(b*c) * D
		for src := 0; src < r; src++ {
			st := Step{Transfers: []Transfer{{Link: n.Bus(), Kind: KindBus, Bytes: rankBytes}}}
			for chip := 0; chip < c; chip++ {
				st.Transfers = append(st.Transfers, Transfer{
					Link: n.ChipSendLink(src, chip), Kind: KindCrossbarPort, Bytes: int64(b) * D,
				})
				for rank := 0; rank < r; rank++ {
					if rank == src {
						continue
					}
					st.Transfers = append(st.Transfers, Transfer{
						Link: n.ChipRecvLink(rank, chip), Kind: KindCrossbarPort, Bytes: rankBytes,
					})
				}
			}
			ph.Steps = append(ph.Steps, st)
		}
		phases = append(phases, ph)
	}

	if c > 1 {
		ph := Phase{Name: "chip-ring-AG", Tier: TierChip}
		for s := 0; s < collective.RingSteps(c); s++ {
			st := Step{}
			for rank := 0; rank < r; rank++ {
				for chip := 0; chip < c; chip++ {
					succ := collective.RingSuccessor(c, chip)
					bytes := int64(b) * D
					snd, rcv := n.chipPair(rank, chip, succ, bytes)
					st.Transfers = append(st.Transfers, snd, rcv)
				}
			}
			ph.Steps = append(ph.Steps, st)
		}
		phases = append(phases, ph)
	}

	if b > 1 {
		ph := Phase{Name: "bank-ring-AG", Tier: TierBank}
		total := P * D
		for s := 0; s < collective.RingSteps(b); s++ {
			st := Step{}
			for rank := 0; rank < r; rank++ {
				for chip := 0; chip < c; chip++ {
					for bank := 0; bank < b; bank++ {
						st.Transfers = append(st.Transfers, Transfer{
							Link: n.RingLink(rank, chip, bank), Kind: KindRing,
							Bytes: chunkBytes(total, b, collective.AGSendChunk(b, bank, s)),
						})
					}
				}
			}
			ph.Steps = append(ph.Steps, st)
		}
		phases = append(phases, ph)
	}
	return phases
}

// allToAllPhases emits the personalized exchange (Table V: Ring(bank) ->
// Permutation(chip) -> Unicast(rank)). Every node's payload D is split into
// P destination blocks.
func allToAllPhases(n *Network, D int64) []Phase {
	topo := n.Topo
	b, c, r := topo.Banks, topo.Chips, topo.Ranks
	P := topo.Nodes()
	var phases []Phase
	blk := func(dst int) int64 { return chunkBytes(D, P, dst) }

	// Phase 1: intra-chip exchange on the bank ring. Shift schedule: at
	// step s every bank sends its block for bank (i+s) clockwise over s
	// hops; each ring segment is deliberately time-multiplexed by exactly s
	// flows, all compile-time scheduled.
	if b > 1 {
		ph := Phase{Name: "bank-exchange", Tier: TierBank}
		for s := 1; s < b; s++ {
			st := Step{}
			for rank := 0; rank < r; rank++ {
				for chip := 0; chip < c; chip++ {
					base := topo.ID(Coord{Rank: rank, Chip: chip, Bank: 0})
					for bank := 0; bank < b; bank++ {
						dst := collective.ShiftDest(b, bank, s)
						bytes := blk(int(base) + dst)
						for hop := 0; hop < s; hop++ {
							st.Transfers = append(st.Transfers, Transfer{
								Link: n.RingLink(rank, chip, (bank+hop)%b), Kind: KindRing, Bytes: bytes,
							})
						}
					}
				}
			}
			ph.Steps = append(ph.Steps, st)
		}
		phases = append(phases, ph)
	}

	// Phase 2: inter-chip permutation through the crossbar (Fig. 8). At
	// step s chip i exchanges with chip (i+s): each chip ships the b*b
	// blocks its banks hold for the partner chip's banks.
	if c > 1 {
		ph := Phase{Name: "chip-permutation", Tier: TierChip}
		for s := 1; s < c; s++ {
			st := Step{}
			for rank := 0; rank < r; rank++ {
				for chip := 0; chip < c; chip++ {
					partner := collective.ShiftDest(c, chip, s)
					var bytes int64
					pbase := topo.ID(Coord{Rank: rank, Chip: partner, Bank: 0})
					for db := 0; db < b; db++ {
						bytes += blk(int(pbase)+db) * int64(b)
					}
					snd, rcv := n.chipPair(rank, chip, partner, bytes)
					st.Transfers = append(st.Transfers, snd, rcv)
				}
			}
			ph.Steps = append(ph.Steps, st)
		}
		phases = append(phases, ph)
	}

	// Phase 3: inter-rank unicast on the shared bus. Source and destination
	// are pre-determined, so the destination rank snoops its packets without
	// host involvement; pairs are serialized because the bus is single-master.
	if r > 1 {
		ph := Phase{Name: "rank-unicast", Tier: TierRank, Pipelined: true}
		perPair := func(srcRank, dstRank int) int64 {
			var bytes int64
			for chip := 0; chip < c; chip++ {
				dbase := topo.ID(Coord{Rank: dstRank, Chip: chip, Bank: 0})
				for db := 0; db < b; db++ {
					bytes += blk(int(dbase)+db) * int64(b*c)
				}
			}
			return bytes
		}
		for s := 1; s < r; s++ {
			// One bus transaction per ordered pair; group a full shift
			// permutation per logical step for symmetry with Fig. 8, but
			// each pair is its own bus step (single master).
			for src := 0; src < r; src++ {
				dst := collective.ShiftDest(r, src, s)
				bytes := perPair(src, dst)
				st := Step{Transfers: []Transfer{{Link: n.Bus(), Kind: KindBus, Bytes: bytes}}}
				for chip := 0; chip < c; chip++ {
					st.Transfers = append(st.Transfers,
						Transfer{Link: n.ChipSendLink(src, chip), Kind: KindCrossbarPort, Bytes: bytes / int64(c)},
						Transfer{Link: n.ChipRecvLink(dst, chip), Kind: KindCrossbarPort, Bytes: bytes / int64(c)},
					)
				}
				ph.Steps = append(ph.Steps, st)
			}
		}
		phases = append(phases, ph)
	}
	return phases
}

// broadcastPhases emits a root-to-all broadcast (Table V: Ring(chip) ->
// Broadcast(rank) -> Ring(bank)); M is the message size. The root is node 0
// by convention at the plan level; symmetry makes the timing root-invariant.
func broadcastPhases(n *Network, M int64) []Phase {
	topo := n.Topo
	b, c, r := topo.Banks, topo.Chips, topo.Ranks
	var phases []Phase

	if c > 1 {
		// Pipelined forward chain across the root rank's chips.
		st := Step{}
		for chip := 0; chip < c-1; chip++ {
			snd, rcv := n.chipPair(0, chip, chip+1, M)
			st.Transfers = append(st.Transfers, snd, rcv)
		}
		phases = append(phases, Phase{Name: "chip-forward", Tier: TierChip, Steps: []Step{st}})
	}
	if r > 1 {
		st := Step{Transfers: []Transfer{{Link: n.Bus(), Kind: KindBus, Bytes: M}}}
		for rank := 1; rank < r; rank++ {
			for chip := 0; chip < c; chip++ {
				st.Transfers = append(st.Transfers, Transfer{
					Link: n.ChipRecvLink(rank, chip), Kind: KindCrossbarPort, Bytes: M,
				})
			}
		}
		phases = append(phases, Phase{Name: "rank-bcast", Tier: TierRank, Steps: []Step{st}})
	}
	if b > 1 {
		st := Step{}
		for rank := 0; rank < r; rank++ {
			for chip := 0; chip < c; chip++ {
				for bank := 0; bank < b-1; bank++ {
					st.Transfers = append(st.Transfers, Transfer{
						Link: n.RingLink(rank, chip, bank), Kind: KindRing, Bytes: M,
					})
				}
			}
		}
		phases = append(phases, Phase{Name: "bank-forward", Tier: TierBank, Steps: []Step{st}})
	}
	return phases
}

// funnelPhases emits the N-to-1 Gather/Reduce extension (Section V-E): all
// traffic converges on node 0. For Reduce the root combines everything it
// receives.
func funnelPhases(n *Network, D int64, reduce bool) []Phase {
	topo := n.Topo
	b, c, r := topo.Banks, topo.Chips, topo.Ranks
	var phases []Phase

	if b > 1 {
		st := Step{}
		for rank := 0; rank < r; rank++ {
			for chip := 0; chip < c; chip++ {
				for src := 1; src < b; src++ {
					// Clockwise from src to bank 0: hops src..b-1.
					for hop := src; hop < b; hop++ {
						st.Transfers = append(st.Transfers, Transfer{
							Link: n.RingLink(rank, chip, hop), Kind: KindRing, Bytes: D,
						})
					}
				}
			}
		}
		ph := Phase{Name: "bank-funnel", Tier: TierBank, Steps: []Step{st}}
		if reduce {
			ph.Steps[0].ReduceBytesPerNode = int64(b-1) * D
		}
		phases = append(phases, ph)
	}
	if c > 1 {
		ph := Phase{Name: "chip-funnel", Tier: TierChip}
		for src := 1; src < c; src++ {
			snd, rcv := n.chipPair(0, src, 0, int64(b)*D)
			st := Step{Transfers: []Transfer{snd, rcv}}
			if reduce {
				st.ReduceBytesPerNode = int64(b) * D
			}
			ph.Steps = append(ph.Steps, st)
		}
		phases = append(phases, ph)
	}
	if r > 1 {
		ph := Phase{Name: "rank-funnel", Tier: TierRank}
		rankBytes := int64(b*c) * D
		for src := 1; src < r; src++ {
			st := Step{Transfers: []Transfer{
				{Link: n.Bus(), Kind: KindBus, Bytes: rankBytes},
				{Link: n.ChipRecvLink(0, 0), Kind: KindCrossbarPort, Bytes: rankBytes},
			}}
			if reduce {
				st.ReduceBytesPerNode = rankBytes
			}
			ph.Steps = append(ph.Steps, st)
		}
		phases = append(phases, ph)
	}
	return phases
}
