package core

import (
	"fmt"

	"pimnet/internal/backend"
	"pimnet/internal/collective"
	"pimnet/internal/config"
	"pimnet/internal/trace"
)

// PIMnet is the collective backend implemented by the paper's proposed
// interconnect: compile the request into a static schedule, verify it is
// contention-free, and execute it on the three network tiers.
type PIMnet struct {
	net *Network
	// ft is non-nil once EnableFaults has armed a fault model; it carries
	// the recovery ladder's state (see faulttol.go).
	ft *ftState
	// cache, when non-nil, shares compiled-plan blueprints with other
	// backends (typically the other workers of a parallel sweep). Only the
	// healthy fast path consults it; PlanVia additionally refuses to serve
	// or learn from a non-pristine network, so fault recompilation can
	// never leak a routed-around schedule into the shared cache.
	cache *PlanCache
}

var _ backend.Backend = (*PIMnet)(nil)

// NewPIMnet builds the PIMnet backend for one memory channel of the system.
func NewPIMnet(sys config.System) (*PIMnet, error) {
	n, err := NewNetwork(sys)
	if err != nil {
		return nil, err
	}
	return &PIMnet{net: n}, nil
}

// Name implements backend.Backend.
func (p *PIMnet) Name() string { return "PIMnet" }

// Network exposes the underlying resource graph for sensitivity sweeps
// (Fig. 14) and diagnostics.
func (p *PIMnet) Network() *Network { return p.net }

// WithPlanCache attaches a shared compiled-plan cache to the backend and
// returns it (builder style). Pass nil to detach.
func (p *PIMnet) WithPlanCache(c *PlanCache) *PIMnet {
	p.cache = c
	return p
}

// SetTracer attaches a tracer to the backend's network: the executor emits
// phase/sync/mem spans (and per-transfer link occupancy at LevelLink), and
// the recovery ladder emits detection and recovery events. Pass nil to
// detach; a nil tracer restores the zero-allocation fast path.
func (p *PIMnet) SetTracer(t trace.Tracer, level trace.Level) {
	p.net.SetTracer(t, level)
}

// UtilSummary returns the link-utilization summary accumulated by an
// attached trace.Util aggregator, or nil when none is attached.
func (p *PIMnet) UtilSummary() *trace.Summary { return p.net.UtilSummary() }

// Collective implements backend.Backend. With a fault model armed the
// request runs under the detection/retry/recompilation ladder; otherwise it
// takes the healthy fast path, compiling through the attached plan cache
// when one is present.
func (p *PIMnet) Collective(req collective.Request) (backend.Result, error) {
	if p.ft != nil {
		return p.faultCollective(req)
	}
	plan, err := PlanVia(p.cache, p.net, req)
	if err != nil {
		return backend.Result{}, fmt.Errorf("pimnet: %w", err)
	}
	return p.net.Execute(plan)
}
