package core

import (
	"fmt"

	"pimnet/internal/backend"
	"pimnet/internal/collective"
	"pimnet/internal/config"
)

// PIMnet is the collective backend implemented by the paper's proposed
// interconnect: compile the request into a static schedule, verify it is
// contention-free, and execute it on the three network tiers.
type PIMnet struct {
	net *Network
	// ft is non-nil once EnableFaults has armed a fault model; it carries
	// the recovery ladder's state (see faulttol.go).
	ft *ftState
}

var _ backend.Backend = (*PIMnet)(nil)

// NewPIMnet builds the PIMnet backend for one memory channel of the system.
func NewPIMnet(sys config.System) (*PIMnet, error) {
	n, err := NewNetwork(sys)
	if err != nil {
		return nil, err
	}
	return &PIMnet{net: n}, nil
}

// Name implements backend.Backend.
func (p *PIMnet) Name() string { return "PIMnet" }

// Network exposes the underlying resource graph for sensitivity sweeps
// (Fig. 14) and diagnostics.
func (p *PIMnet) Network() *Network { return p.net }

// Collective implements backend.Backend. With a fault model armed the
// request runs under the detection/retry/recompilation ladder; otherwise it
// takes the healthy fast path unchanged.
func (p *PIMnet) Collective(req collective.Request) (backend.Result, error) {
	if p.ft != nil {
		return p.faultCollective(req)
	}
	plan, err := PlanFor(p.net, req)
	if err != nil {
		return backend.Result{}, fmt.Errorf("pimnet: %w", err)
	}
	return p.net.Execute(plan)
}
