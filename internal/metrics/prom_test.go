package metrics

import (
	"strings"
	"testing"
)

// TestPromWriteValidateRoundTrip: WriteProm output always passes
// ValidateProm, with kinds, labels, and histogram suffixes preserved.
func TestPromWriteValidateRoundTrip(t *testing.T) {
	families := []PromFamily{
		{Name: "app_requests_total", Help: "Requests by endpoint.", Kind: PromCounter, Samples: []PromSample{
			{Labels: [][2]string{{"endpoint", "simulate"}}, Value: 12},
			{Labels: [][2]string{{"endpoint", "sweep"}}, Value: 3},
		}},
		{Name: "app_in_flight", Help: "Currently executing.", Kind: PromGauge, Samples: []PromSample{
			{Value: 2},
		}},
		{Name: "app_latency_seconds", Help: "Request latency.", Kind: PromHistogram, Samples: []PromSample{
			{Suffix: "_bucket", Labels: [][2]string{{"le", "0.001"}}, Value: 4},
			{Suffix: "_bucket", Labels: [][2]string{{"le", "0.01"}}, Value: 9},
			{Suffix: "_bucket", Labels: [][2]string{{"le", "+Inf"}}, Value: 15},
			{Suffix: "_sum", Value: 0.123},
			{Suffix: "_count", Value: 15},
		}},
		{Name: "app_weird_values", Help: "Escaping and\nspecial floats.", Kind: PromGauge, Samples: []PromSample{
			{Labels: [][2]string{{"path", `C:\tmp "x"` + "\nnewline"}}, Value: 0.5},
		}},
	}
	var b strings.Builder
	if err := WriteProm(&b, families); err != nil {
		t.Fatal(err)
	}
	scrape, err := ValidateProm(b.String())
	if err != nil {
		t.Fatalf("round trip failed:\n%s\n%v", b.String(), err)
	}
	if got := scrape.Types["app_requests_total"]; got != "counter" {
		t.Errorf("type = %q, want counter", got)
	}
	if got := scrape.Types["app_latency_seconds"]; got != "histogram" {
		t.Errorf("type = %q, want histogram", got)
	}
	names := scrape.Families()
	want := []string{"app_in_flight", "app_latency_seconds", "app_requests_total", "app_weird_values"}
	if len(names) != len(want) {
		t.Fatalf("families %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("families %v, want %v", names, want)
		}
	}
	// The escaped label value survives the round trip.
	found := false
	for _, s := range scrape.Series {
		if s.Name == "app_weird_values" {
			found = true
			if s.Labels["path"] != `C:\tmp "x"`+"\nnewline" {
				t.Errorf("label round trip: %q", s.Labels["path"])
			}
		}
	}
	if !found {
		t.Error("escaped series missing from scrape")
	}
}

// TestPromBoundSeconds: millisecond bounds render as shortest-form second
// strings.
func TestPromBoundSeconds(t *testing.T) {
	for _, tc := range []struct {
		ms   float64
		want string
	}{{0.5, "0.0005"}, {1, "0.001"}, {1000, "1"}, {2500, "2.5"}} {
		if got := PromBoundSeconds(tc.ms); got != tc.want {
			t.Errorf("PromBoundSeconds(%v) = %q, want %q", tc.ms, got, tc.want)
		}
	}
}

// TestValidatePromRejections: each malformed document is rejected with an
// error naming the offense.
func TestValidatePromRejections(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"sample without TYPE",
			"app_x 1\n",
			"no preceding TYPE"},
		{"duplicate TYPE",
			"# TYPE app_x counter\n# TYPE app_x gauge\napp_x 1\n",
			"duplicate TYPE"},
		{"unknown TYPE kind",
			"# TYPE app_x widget\napp_x 1\n",
			"unknown TYPE"},
		{"invalid metric name",
			"# TYPE 0bad counter\n0bad 1\n",
			"invalid family name"},
		{"invalid label name",
			"# TYPE app_x counter\napp_x{0bad=\"v\"} 1\n",
			"invalid label name"},
		{"unquoted label value",
			"# TYPE app_x counter\napp_x{l=v} 1\n",
			"not quoted"},
		{"unterminated label set",
			"# TYPE app_x counter\napp_x{l=\"v\"\n",
			"unterminated"},
		{"duplicate series",
			"# TYPE app_x counter\napp_x{l=\"v\"} 1\napp_x{l=\"v\"} 2\n",
			"duplicate series"},
		{"bad value",
			"# TYPE app_x counter\napp_x one\n",
			"bad value"},
		{"bad timestamp",
			"# TYPE app_x counter\napp_x 1 soon\n",
			"bad timestamp"},
		{"histogram without +Inf",
			"# TYPE app_h histogram\napp_h_bucket{le=\"1\"} 1\napp_h_sum 1\napp_h_count 1\n",
			"missing +Inf"},
		{"histogram without count",
			"# TYPE app_h histogram\napp_h_bucket{le=\"+Inf\"} 1\napp_h_sum 1\n",
			"missing _sum or _count"},
		{"histogram count mismatch",
			"# TYPE app_h histogram\napp_h_bucket{le=\"+Inf\"} 2\napp_h_sum 1\napp_h_count 3\n",
			"+Inf bucket"},
		{"histogram bucket without le",
			"# TYPE app_h histogram\napp_h_bucket 2\napp_h_sum 1\napp_h_count 2\n",
			"without le"},
	}
	for _, tc := range cases {
		_, err := ValidateProm(tc.doc)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestValidatePromAcceptsRealisticDocument: comments, blank lines, special
// float values, timestamps, and per-label-set histograms all pass.
func TestValidatePromAcceptsRealisticDocument(t *testing.T) {
	doc := strings.Join([]string{
		"# A freeform comment.",
		"# HELP app_rate Current rate.",
		"# TYPE app_rate gauge",
		"app_rate 0.25",
		"app_rate{shard=\"a\"} NaN",
		"app_rate{shard=\"b\"} +Inf",
		"",
		"# TYPE app_lat histogram",
		"app_lat_bucket{tenant=\"x\",le=\"0.1\"} 1",
		"app_lat_bucket{tenant=\"x\",le=\"+Inf\"} 2",
		"app_lat_sum{tenant=\"x\"} 0.3",
		"app_lat_count{tenant=\"x\"} 2",
		"app_lat_bucket{tenant=\"y\",le=\"+Inf\"} 0",
		"app_lat_sum{tenant=\"y\"} 0",
		"app_lat_count{tenant=\"y\"} 0 1712345678901",
		"",
	}, "\n")
	scrape, err := ValidateProm(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(scrape.Series) != 10 {
		t.Fatalf("parsed %d series, want 10", len(scrape.Series))
	}
	fams := scrape.Families()
	if len(fams) != 2 || fams[0] != "app_lat" || fams[1] != "app_rate" {
		t.Fatalf("families %v", fams)
	}
}
