package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4), hand-rolled so the
// daemon stays dependency-free. PromFamily is the writer-side model — one
// metric family with its samples — and WriteProm renders a slice of them.
// ValidateProm is the matching consumer-side checker used by tests,
// cmd/promcheck, and the serve smoke script to prove /metrics stays
// scrapeable without running an actual Prometheus.

// PromKind is a metric family's TYPE.
type PromKind int

const (
	PromCounter PromKind = iota
	PromGauge
	PromHistogram
)

func (k PromKind) String() string {
	switch k {
	case PromCounter:
		return "counter"
	case PromGauge:
		return "gauge"
	case PromHistogram:
		return "histogram"
	}
	return "untyped"
}

// PromSample is one series of a family: an optional name suffix (histogram
// _bucket/_sum/_count), ordered label pairs, and the value.
type PromSample struct {
	Suffix string
	Labels [][2]string
	Value  float64
}

// PromFamily is one metric family: HELP, TYPE, and its samples.
type PromFamily struct {
	Name    string
	Help    string
	Kind    PromKind
	Samples []PromSample
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// PromBoundSeconds renders a millisecond histogram bound as the seconds
// string used in le labels (shortest float representation, so 0.5ms ->
// "0.0005" and 1000ms -> "1").
func PromBoundSeconds(ms float64) string {
	return strconv.FormatFloat(ms/1000, 'g', -1, 64)
}

// promFloat renders a sample value. Prometheus accepts Go's shortest
// representation plus +Inf/-Inf/NaN spellings.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm renders families in exposition text format. Families render in
// slice order; each family's samples in slice order (callers keep label
// sets sorted for deterministic scrapes).
func WriteProm(w io.Writer, families []PromFamily) error {
	for _, f := range families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, strings.ReplaceAll(f.Help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, s := range f.Samples {
			if _, err := io.WriteString(w, f.Name+s.Suffix); err != nil {
				return err
			}
			if len(s.Labels) > 0 {
				parts := make([]string, len(s.Labels))
				for i, kv := range s.Labels {
					parts[i] = kv[0] + `="` + promEscape(kv[1]) + `"`
				}
				if _, err := io.WriteString(w, "{"+strings.Join(parts, ",")+"}"); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, " "+promFloat(s.Value)+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// PromSeries is one parsed sample line.
type PromSeries struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromScrape is a parsed exposition document.
type PromScrape struct {
	// Types maps family name to declared TYPE.
	Types map[string]string
	// Series holds every sample line in document order.
	Series []PromSeries
}

// Families returns the sorted family names that have at least one sample
// (histogram suffixes fold into their base family).
func (p *PromScrape) Families() []string {
	seen := map[string]bool{}
	for _, s := range p.Series {
		name := s.Name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && p.Types[base] == "histogram" {
				name = base
				break
			}
		}
		seen[name] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ValidateProm parses an exposition document and enforces the invariants a
// scraper relies on: every sample's family has a TYPE declared before it,
// metric and label names are well-formed, values parse as floats, no
// duplicate series, and each histogram has _sum, _count, and a +Inf bucket
// whose count equals _count. It returns the parsed scrape on success.
func ValidateProm(text string) (*PromScrape, error) {
	scrape := &PromScrape{Types: map[string]string{}}
	seen := map[string]bool{}
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				if len(fields) < 4 {
					return nil, fmt.Errorf("line %d: TYPE without kind", lineNo)
				}
				name, kind := fields[2], fields[3]
				if !validPromName(name) {
					return nil, fmt.Errorf("line %d: invalid family name %q", lineNo, name)
				}
				if _, dup := scrape.Types[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown TYPE %q", lineNo, kind)
				}
				scrape.Types[name] = kind
			}
			continue
		}
		series, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if typeFamilyOf(scrape.Types, series.Name) == "" {
			return nil, fmt.Errorf("line %d: sample %q has no preceding TYPE", lineNo, series.Name)
		}
		key := seriesKey(series)
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true
		scrape.Series = append(scrape.Series, series)
	}
	if err := validateHistograms(scrape); err != nil {
		return nil, err
	}
	return scrape, nil
}

// typeFamilyOf resolves a sample name to its declared family, folding
// histogram suffixes.
func typeFamilyOf(types map[string]string, name string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return ""
}

func seriesKey(s PromSeries) string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	for _, k := range keys {
		b.WriteString("|" + k + "=" + s.Labels[k])
	}
	return b.String()
}

func validPromName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// parsePromSample parses one sample line: name{labels} value [timestamp].
func parsePromSample(line string) (PromSeries, error) {
	s := PromSeries{Labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		s.Name = rest[:brace]
		rest = rest[brace+1:]
		for {
			rest = strings.TrimLeft(rest, " ,")
			if rest == "" {
				return s, fmt.Errorf("unterminated label set")
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return s, fmt.Errorf("label without '='")
			}
			lname := rest[:eq]
			if !validPromName(lname) || strings.ContainsRune(lname, ':') {
				return s, fmt.Errorf("invalid label name %q", lname)
			}
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				return s, fmt.Errorf("label %q value not quoted", lname)
			}
			rest = rest[1:]
			var val strings.Builder
			for {
				if rest == "" {
					return s, fmt.Errorf("unterminated label value for %q", lname)
				}
				c := rest[0]
				if c == '\\' {
					if len(rest) < 2 {
						return s, fmt.Errorf("dangling escape in label %q", lname)
					}
					switch rest[1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return s, fmt.Errorf("bad escape \\%c in label %q", rest[1], lname)
					}
					rest = rest[2:]
					continue
				}
				if c == '"' {
					rest = rest[1:]
					break
				}
				val.WriteByte(c)
				rest = rest[1:]
			}
			if _, dup := s.Labels[lname]; dup {
				return s, fmt.Errorf("duplicate label %q", lname)
			}
			s.Labels[lname] = val.String()
		}
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return s, fmt.Errorf("sample without value")
		}
		s.Name = rest[:sp]
		rest = rest[sp:]
	}
	if !validPromName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("want 'value [timestamp]', got %q", strings.TrimSpace(rest))
	}
	v, err := parsePromFloat(fields[0])
	if err != nil {
		return s, err
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

func parsePromFloat(f string) (float64, error) {
	switch f {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN", "nan":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(f, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", f)
	}
	return v, nil
}

// validateHistograms checks every declared histogram family that has
// samples: _sum and _count present, at least one bucket, a +Inf bucket, and
// +Inf bucket count == _count, per label set (excluding "le").
func validateHistograms(scrape *PromScrape) error {
	type hist struct {
		infCount float64
		hasInf   bool
		buckets  int
		count    float64
		hasCount bool
		hasSum   bool
	}
	hists := map[string]*hist{}
	get := func(family string, labels map[string]string) *hist {
		base := map[string]string{}
		for k, v := range labels {
			if k != "le" {
				base[k] = v
			}
		}
		key := seriesKey(PromSeries{Name: family, Labels: base})
		h := hists[key]
		if h == nil {
			h = &hist{}
			hists[key] = h
		}
		return h
	}
	for _, s := range scrape.Series {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(s.Name, suf)
			if base == s.Name || scrape.Types[base] != "histogram" {
				continue
			}
			h := get(base, s.Labels)
			switch suf {
			case "_bucket":
				le, ok := s.Labels["le"]
				if !ok {
					return fmt.Errorf("histogram %s: bucket without le label", base)
				}
				h.buckets++
				if le == "+Inf" {
					h.hasInf = true
					h.infCount = s.Value
				}
			case "_sum":
				h.hasSum = true
			case "_count":
				h.hasCount = true
				h.count = s.Value
			}
		}
	}
	for key, h := range hists {
		name := key
		if i := strings.IndexByte(name, '|'); i >= 0 {
			name = name[:i]
		}
		if h.buckets == 0 {
			return fmt.Errorf("histogram %s: no buckets", name)
		}
		if !h.hasInf {
			return fmt.Errorf("histogram %s: missing +Inf bucket", name)
		}
		if !h.hasSum || !h.hasCount {
			return fmt.Errorf("histogram %s: missing _sum or _count", name)
		}
		if h.infCount != h.count {
			return fmt.Errorf("histogram %s: +Inf bucket %v != count %v", name, h.infCount, h.count)
		}
	}
	return nil
}
