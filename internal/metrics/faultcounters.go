package metrics

import "fmt"

// FaultCounters tallies fault-subsystem events across a run. Each field
// counts one rung of the recovery ladder:
//
//	Injected   faults realized into the network (fault-model size)
//	Detected   detection firings: phase-timeout guard, payload integrity
//	           check, or READY/START watchdog
//	Retried    bounded re-executions (transient corruption, sync drop)
//	Recompiled plans recompiled to route around hard link failures
//	Degraded   completions in degraded mode: a slow run accepted as-is or
//	           a fallback to the host-relay baseline
//
// The zero value is ready to use.
type FaultCounters struct {
	Injected   uint64 `json:"injected"`
	Detected   uint64 `json:"detected"`
	Retried    uint64 `json:"retried"`
	Recompiled uint64 `json:"recompiled"`
	Degraded   uint64 `json:"degraded"`
}

// Any reports whether any counter is nonzero.
func (f FaultCounters) Any() bool {
	return f.Injected != 0 || f.Detected != 0 || f.Retried != 0 ||
		f.Recompiled != 0 || f.Degraded != 0
}

// Merge adds another counter set into f.
func (f *FaultCounters) Merge(o FaultCounters) {
	f.Injected += o.Injected
	f.Detected += o.Detected
	f.Retried += o.Retried
	f.Recompiled += o.Recompiled
	f.Degraded += o.Degraded
}

// Sub returns f - o component-wise; used to attribute a cumulative backend
// counter snapshot to one workload run. Underflow panics: counters are
// monotone, so a negative delta always indicates snapshots taken out of
// order.
func (f FaultCounters) Sub(o FaultCounters) FaultCounters {
	if o.Injected > f.Injected || o.Detected > f.Detected || o.Retried > f.Retried ||
		o.Recompiled > f.Recompiled || o.Degraded > f.Degraded {
		panic(fmt.Sprintf("metrics: fault counter underflow: %v - %v", f, o))
	}
	return FaultCounters{
		Injected:   f.Injected - o.Injected,
		Detected:   f.Detected - o.Detected,
		Retried:    f.Retried - o.Retried,
		Recompiled: f.Recompiled - o.Recompiled,
		Degraded:   f.Degraded - o.Degraded,
	}
}

// String renders the counters in ladder order.
func (f FaultCounters) String() string {
	return fmt.Sprintf("{injected:%d detected:%d retried:%d recompiled:%d degraded:%d}",
		f.Injected, f.Detected, f.Retried, f.Recompiled, f.Degraded)
}
