package metrics

import (
	"encoding/json"
	"strings"
	"testing"

	"pimnet/internal/sim"
)

func TestAddGetTotal(t *testing.T) {
	var b Breakdown
	b.Add(Compute, 10*sim.Microsecond)
	b.Add(InterBank, 5*sim.Microsecond)
	b.Add(InterBank, 5*sim.Microsecond)
	if got := b.Get(InterBank); got != 10*sim.Microsecond {
		t.Fatalf("InterBank = %v", got)
	}
	if got := b.Total(); got != 20*sim.Microsecond {
		t.Fatalf("Total = %v", got)
	}
	if got := b.CommTotal(); got != 10*sim.Microsecond {
		t.Fatalf("CommTotal = %v", got)
	}
}

func TestNegativeChargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative charge did not panic")
		}
	}()
	var b Breakdown
	b.Add(Compute, -1)
}

func TestUnknownComponentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown component did not panic")
		}
	}()
	var b Breakdown
	b.Add(Component(99), 1)
}

func TestMergeScaleFraction(t *testing.T) {
	var a, b Breakdown
	a.Add(Compute, 3*sim.Microsecond)
	b.Add(Compute, 1*sim.Microsecond)
	b.Add(Sync, 4*sim.Microsecond)
	a.Merge(b)
	if a.Get(Compute) != 4*sim.Microsecond || a.Get(Sync) != 4*sim.Microsecond {
		t.Fatalf("merge wrong: %v", a.String())
	}
	a.Scale(2)
	if a.Total() != 16*sim.Microsecond {
		t.Fatalf("scale wrong: %v", a.Total())
	}
	if f := a.Fraction(Sync); f != 0.5 {
		t.Fatalf("fraction = %v, want 0.5", f)
	}
	var empty Breakdown
	if f := empty.Fraction(Compute); f != 0 {
		t.Fatalf("empty fraction = %v", f)
	}
}

func TestComponentNames(t *testing.T) {
	want := []string{"compute", "inter-bank", "inter-chip", "inter-rank",
		"host-xfer", "host-compute", "launch", "sync", "mem", "recovery",
		"cxl-link"}
	comps := Components()
	if len(comps) != len(want) {
		t.Fatalf("%d components, want %d", len(comps), len(want))
	}
	for i, c := range comps {
		if c.String() != want[i] {
			t.Errorf("component %d = %q, want %q", i, c.String(), want[i])
		}
	}
	if got := Component(-1).String(); !strings.Contains(got, "component(") {
		t.Errorf("invalid component String = %q", got)
	}
}

func TestCommComponentsExcludeCompute(t *testing.T) {
	for _, c := range CommComponents() {
		if c == Compute {
			t.Fatal("CommComponents includes Compute")
		}
	}
	if len(CommComponents()) != len(Components())-1 {
		t.Fatal("CommComponents missing entries")
	}
}

func TestStringOrdersBySize(t *testing.T) {
	var b Breakdown
	b.Add(Sync, 1*sim.Nanosecond)
	b.Add(Compute, 3*sim.Nanosecond)
	b.Add(Mem, 2*sim.Nanosecond)
	s := b.String()
	ci := strings.Index(s, "compute")
	mi := strings.Index(s, "mem")
	si := strings.Index(s, "sync")
	if !(ci < mi && mi < si) {
		t.Fatalf("String not ordered by size: %q", s)
	}
}

func TestReset(t *testing.T) {
	var b Breakdown
	b.Add(Compute, sim.Second)
	b.Reset()
	if b.Total() != 0 {
		t.Fatal("Reset left residue")
	}
}

func TestBreakdownJSONRoundTrip(t *testing.T) {
	var b Breakdown
	b.Add(Compute, 10*sim.Microsecond)
	b.Add(InterBank, 3*sim.Nanosecond)
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	// Map keys are sorted by encoding/json: equal breakdowns must encode to
	// identical bytes (the serving tier's bit-identical-response contract).
	data2, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("non-deterministic encoding: %s vs %s", data, data2)
	}
	var back Breakdown
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != b {
		t.Fatalf("round trip: got %v, want %v", back.String(), b.String())
	}
}

func TestBreakdownUnmarshalRejectsBadInput(t *testing.T) {
	var b Breakdown
	if err := json.Unmarshal([]byte(`{"no-such-component":1}`), &b); err == nil {
		t.Fatal("unknown component accepted")
	}
	if err := json.Unmarshal([]byte(`{"compute":-5}`), &b); err == nil {
		t.Fatal("negative time accepted")
	}
	if err := json.Unmarshal([]byte(`[1,2]`), &b); err == nil {
		t.Fatal("non-object accepted")
	}
}
