package metrics

import (
	"fmt"
	"time"
)

// SweepStats summarizes the execution of one parallel experiment sweep: how
// many points ran on how many workers, real (wall-clock, not simulated)
// time overall and per point, and how effective the shared compiled-plan
// cache was. Wall times are measurement metadata — they vary run to run and
// are deliberately excluded from the deterministic experiment outputs the
// golden and determinism tests compare.
type SweepStats struct {
	Points  int
	Workers int
	Wall    time.Duration
	// PointWall holds each point's wall time, indexed like the sweep's
	// point slice.
	PointWall []time.Duration
	// Compiled-plan cache effectiveness over the sweep's window.
	CacheHits    uint64
	CacheMisses  uint64
	CacheEntries int
}

// HitRate returns the cache hit fraction (0 when the cache saw no lookups).
func (s SweepStats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// MaxPointWall returns the slowest point's wall time.
func (s SweepStats) MaxPointWall() time.Duration {
	var max time.Duration
	for _, d := range s.PointWall {
		if d > max {
			max = d
		}
	}
	return max
}

// MeanPointWall returns the average point wall time.
func (s SweepStats) MeanPointWall() time.Duration {
	if len(s.PointWall) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range s.PointWall {
		sum += d
	}
	return sum / time.Duration(len(s.PointWall))
}

// Merge folds another sweep's stats into s: points and cache counters add,
// wall times accumulate, and Workers keeps the largest pool seen. Used by
// harnesses that run several sweeps and report one aggregate.
func (s *SweepStats) Merge(other SweepStats) {
	s.Points += other.Points
	if other.Workers > s.Workers {
		s.Workers = other.Workers
	}
	s.Wall += other.Wall
	s.PointWall = append(s.PointWall, other.PointWall...)
	s.CacheHits += other.CacheHits
	s.CacheMisses += other.CacheMisses
	if other.CacheEntries > s.CacheEntries {
		s.CacheEntries = other.CacheEntries
	}
}

// String renders a one-line summary.
func (s SweepStats) String() string {
	return fmt.Sprintf("%d points on %d workers in %v (max point %v, cache %d/%d hits)",
		s.Points, s.Workers, s.Wall.Round(time.Microsecond),
		s.MaxPointWall().Round(time.Microsecond), s.CacheHits, s.CacheHits+s.CacheMisses)
}
