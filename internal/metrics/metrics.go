// Package metrics provides execution-time breakdown accounting. Every
// backend in pimnet attributes simulated time to one of a fixed set of
// components so that the paper's stacked-bar figures (Fig. 10 execution
// breakdown, Fig. 11 communication breakdown) can be regenerated directly.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"pimnet/internal/sim"
)

// Component identifies where simulated time was spent.
type Component int

// The component set covers both the paper's application breakdown
// (compute vs. communication, Fig. 10) and its PIM-communication breakdown
// (inter-bank / inter-chip / inter-rank / Sync / Mem, Fig. 11), plus the
// host-path costs that only the software implementations incur.
const (
	Compute     Component = iota // DPU kernel execution
	InterBank                    // PIMnet tier 1 / bank-level transfers
	InterChip                    // PIMnet tier 2 / chip-level transfers
	InterRank                    // PIMnet tier 3 / rank-level (DDR bus) transfers
	HostXfer                     // CPU<->PIM data movement over the memory channel
	HostCompute                  // host-side reduction / reshaping work
	Launch                       // driver and kernel-launch overhead
	Sync                         // READY/START synchronization
	Mem                          // MRAM<->WRAM DMA staging (WRAM overflow)
	Recovery                     // fault handling: timeouts, retries, recompilation
	numComponents
)

var componentNames = [numComponents]string{
	"compute", "inter-bank", "inter-chip", "inter-rank",
	"host-xfer", "host-compute", "launch", "sync", "mem", "recovery",
}

// String returns the component's short name.
func (c Component) String() string {
	if c < 0 || c >= numComponents {
		return fmt.Sprintf("component(%d)", int(c))
	}
	return componentNames[c]
}

// Components lists every component in canonical order.
func Components() []Component {
	out := make([]Component, numComponents)
	for i := range out {
		out[i] = Component(i)
	}
	return out
}

// CommComponents lists the components that count as communication time in
// the paper's figures.
func CommComponents() []Component {
	return []Component{InterBank, InterChip, InterRank, HostXfer, HostCompute, Launch, Sync, Mem, Recovery}
}

// Breakdown accumulates time per component. The zero value is ready to use.
type Breakdown struct {
	t [numComponents]sim.Time
}

// Add charges d to component c. Negative charges panic: time cannot be
// refunded, and a negative duration always indicates an accounting bug.
func (b *Breakdown) Add(c Component, d sim.Time) {
	if d < 0 {
		panic(fmt.Sprintf("metrics: negative charge %v to %v", d, c))
	}
	if c < 0 || c >= numComponents {
		panic(fmt.Sprintf("metrics: unknown component %d", int(c)))
	}
	b.t[c] += d
}

// Get returns the time charged to c.
func (b *Breakdown) Get(c Component) sim.Time {
	if c < 0 || c >= numComponents {
		return 0
	}
	return b.t[c]
}

// Total returns the sum over all components.
func (b *Breakdown) Total() sim.Time {
	var s sim.Time
	for _, v := range b.t {
		s += v
	}
	return s
}

// CommTotal returns the total communication time (everything but Compute).
func (b *Breakdown) CommTotal() sim.Time { return b.Total() - b.t[Compute] }

// Merge adds another breakdown into b.
func (b *Breakdown) Merge(other Breakdown) {
	for i := range b.t {
		b.t[i] += other.t[i]
	}
}

// Scale multiplies every component by k (k >= 0); used when a measured
// iteration is replicated analytically.
func (b *Breakdown) Scale(k int64) {
	if k < 0 {
		panic("metrics: negative scale")
	}
	for i := range b.t {
		b.t[i] *= sim.Time(k)
	}
}

// Fraction returns component c's share of the total (0 when empty).
func (b *Breakdown) Fraction(c Component) float64 {
	tot := b.Total()
	if tot == 0 {
		return 0
	}
	return float64(b.Get(c)) / float64(tot)
}

// Reset zeroes the breakdown.
func (b *Breakdown) Reset() { b.t = [numComponents]sim.Time{} }

// String renders the nonzero components, largest first.
func (b *Breakdown) String() string {
	type kv struct {
		c Component
		v sim.Time
	}
	var parts []kv
	for i, v := range b.t {
		if v > 0 {
			parts = append(parts, kv{Component(i), v})
		}
	}
	sort.Slice(parts, func(i, j int) bool {
		if parts[i].v != parts[j].v {
			return parts[i].v > parts[j].v
		}
		return parts[i].c < parts[j].c
	})
	var sb strings.Builder
	sb.WriteString("{")
	for i, p := range parts {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%v:%v", p.c, p.v)
	}
	sb.WriteString("}")
	return sb.String()
}
