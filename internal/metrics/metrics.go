// Package metrics provides execution-time breakdown accounting. Every
// backend in pimnet attributes simulated time to one of a fixed set of
// components so that the paper's stacked-bar figures (Fig. 10 execution
// breakdown, Fig. 11 communication breakdown) can be regenerated directly.
package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"pimnet/internal/sim"
)

// Component identifies where simulated time was spent.
type Component int

// The component set covers both the paper's application breakdown
// (compute vs. communication, Fig. 10) and its PIM-communication breakdown
// (inter-bank / inter-chip / inter-rank / Sync / Mem, Fig. 11), plus the
// host-path costs that only the software implementations incur.
const (
	Compute     Component = iota // DPU kernel execution
	InterBank                    // PIMnet tier 1 / bank-level transfers
	InterChip                    // PIMnet tier 2 / chip-level transfers
	InterRank                    // PIMnet tier 3 / rank-level (DDR bus) transfers
	HostXfer                     // CPU<->PIM data movement over the memory channel
	HostCompute                  // host-side reduction / reshaping work
	Launch                       // driver and kernel-launch overhead
	Sync                         // READY/START synchronization
	Mem                          // MRAM<->WRAM DMA staging (WRAM overflow)
	Recovery                     // fault handling: timeouts, retries, recompilation
	CXLLink                      // CXL fabric traversals (CXL-PIM backend only)
	numComponents
)

var componentNames = [numComponents]string{
	"compute", "inter-bank", "inter-chip", "inter-rank",
	"host-xfer", "host-compute", "launch", "sync", "mem", "recovery",
	"cxl-link",
}

// String returns the component's short name.
func (c Component) String() string {
	if c < 0 || c >= numComponents {
		return fmt.Sprintf("component(%d)", int(c))
	}
	return componentNames[c]
}

// Components lists every component in canonical order.
func Components() []Component {
	out := make([]Component, numComponents)
	for i := range out {
		out[i] = Component(i)
	}
	return out
}

// CommComponents lists the components that count as communication time in
// the paper's figures.
func CommComponents() []Component {
	return []Component{InterBank, InterChip, InterRank, HostXfer, HostCompute, Launch, Sync, Mem, Recovery, CXLLink}
}

// Breakdown accumulates time per component. The zero value is ready to use.
type Breakdown struct {
	t [numComponents]sim.Time
}

// Add charges d to component c. Negative charges panic: time cannot be
// refunded, and a negative duration always indicates an accounting bug.
func (b *Breakdown) Add(c Component, d sim.Time) {
	if d < 0 {
		panic(fmt.Sprintf("metrics: negative charge %v to %v", d, c))
	}
	if c < 0 || c >= numComponents {
		panic(fmt.Sprintf("metrics: unknown component %d", int(c)))
	}
	b.t[c] += d
}

// Get returns the time charged to c.
func (b *Breakdown) Get(c Component) sim.Time {
	if c < 0 || c >= numComponents {
		return 0
	}
	return b.t[c]
}

// Total returns the sum over all components.
func (b *Breakdown) Total() sim.Time {
	var s sim.Time
	for _, v := range b.t {
		s += v
	}
	return s
}

// CommTotal returns the total communication time (everything but Compute).
func (b *Breakdown) CommTotal() sim.Time { return b.Total() - b.t[Compute] }

// Merge adds another breakdown into b.
func (b *Breakdown) Merge(other Breakdown) {
	for i := range b.t {
		b.t[i] += other.t[i]
	}
}

// Scale multiplies every component by k (k >= 0); used when a measured
// iteration is replicated analytically.
func (b *Breakdown) Scale(k int64) {
	if k < 0 {
		panic("metrics: negative scale")
	}
	for i := range b.t {
		b.t[i] *= sim.Time(k)
	}
}

// Fraction returns component c's share of the total (0 when empty).
func (b *Breakdown) Fraction(c Component) float64 {
	tot := b.Total()
	if tot == 0 {
		return 0
	}
	return float64(b.Get(c)) / float64(tot)
}

// Reset zeroes the breakdown.
func (b *Breakdown) Reset() { b.t = [numComponents]sim.Time{} }

// Map returns the nonzero components keyed by their canonical names, in
// picoseconds. This is the JSON/wire form of a breakdown.
func (b Breakdown) Map() map[string]sim.Time {
	out := make(map[string]sim.Time)
	for i, v := range b.t {
		if v > 0 {
			out[componentNames[i]] = v
		}
	}
	return out
}

// MarshalJSON encodes the breakdown as its component map, e.g.
// {"inter-bank":1200,"sync":300}. encoding/json sorts map keys, so equal
// breakdowns always encode to identical bytes — the serving tier's
// bit-identical-response contract depends on this.
func (b Breakdown) MarshalJSON() ([]byte, error) {
	return json.Marshal(b.Map())
}

// UnmarshalJSON decodes the component-map form produced by MarshalJSON.
// Unknown component names are an error (they indicate a schema mismatch, not
// a forward-compatible extension: the component set is the paper's fixed
// attribution taxonomy).
func (b *Breakdown) UnmarshalJSON(data []byte) error {
	var m map[string]sim.Time
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	b.Reset()
	for name, v := range m {
		if v < 0 {
			return fmt.Errorf("metrics: negative time %d for component %q", v, name)
		}
		found := false
		for i, n := range componentNames {
			if n == name {
				b.Add(Component(i), v)
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("metrics: unknown breakdown component %q", name)
		}
	}
	return nil
}

// String renders the nonzero components, largest first.
func (b *Breakdown) String() string {
	type kv struct {
		c Component
		v sim.Time
	}
	var parts []kv
	for i, v := range b.t {
		if v > 0 {
			parts = append(parts, kv{Component(i), v})
		}
	}
	sort.Slice(parts, func(i, j int) bool {
		if parts[i].v != parts[j].v {
			return parts[i].v > parts[j].v
		}
		return parts[i].c < parts[j].c
	})
	var sb strings.Builder
	sb.WriteString("{")
	for i, p := range parts {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%v:%v", p.c, p.v)
	}
	sb.WriteString("}")
	return sb.String()
}
