// Package config defines the simulated system configuration: the PIM
// topology and compute parameters (paper Table II/VI), the PIMnet tier
// parameters (Table IV), and the host-path bandwidths and overheads used by
// the software baselines. Default() reproduces the paper's evaluation
// configuration: a DDR4-2400 channel with 4 ranks, 8 chips per rank, 8 PIM
// banks per chip (256 DPUs per channel).
package config

import (
	"fmt"

	"pimnet/internal/sim"
)

// Bandwidth constants, bytes per second.
const (
	GBps = 1e9
	MBps = 1e6
)

// DPU describes the per-bank compute unit (UPMEM DPU, Table II/VI).
type DPU struct {
	FreqHz     float64 // 350 MHz in the paper
	Tasklets   int     // hardware threads; >= 11 keeps the 14-stage pipeline full
	WRAMBytes  int64   // 64 KB scratchpad; collectives operate out of WRAM
	IRAMBytes  int64   // 24 KB instruction memory
	MRAMBytes  int64   // 64 MB bank memory
	PipelineOK int     // tasklets needed for 1 instr/cycle throughput

	// Per-operation cycle costs for the kernel cost model. UPMEM DPUs have
	// no native multiplier: 32-bit multiply is emulated in software.
	AddCycles   float64
	MulCycles   float64
	LoadCycles  float64 // WRAM access
	StoreCycles float64

	// ComputeScale divides compute time; 1 for UPMEM. Fig. 15 raises it to
	// model HBM-PIM and GDDR6-AiM class MAC throughput.
	ComputeScale float64

	// DMA engine between MRAM and WRAM within a bank.
	DMABandwidth float64  // bytes/s, sustained
	DMALatency   sim.Time // fixed setup per DMA burst
}

// Net describes the three PIMnet tiers (Table IV).
type Net struct {
	// Inter-bank: the chip's internal I/O bus partitioned into four 16-bit
	// unidirectional ring channels.
	BankChannels  int     // 4: In/Out x East/West
	BankChannelBW float64 // 0.7 GB/s each
	BankHopLat    sim.Time

	// Inter-chip: DQ pins split 4 send + 4 receive, routed to the 8x8
	// buffer-chip crossbar.
	ChipChannels  int     // 2: one send, one receive
	ChipChannelBW float64 // 1.05 GB/s each
	ChipHopLat    sim.Time
	SwitchLat     sim.Time // crossbar traversal

	// Inter-rank: the multi-drop DDR bus reused as a broadcast medium.
	RankBusBW  float64 // 16.8 GB/s, half duplex
	RankBusLat sim.Time

	// READY/START synchronization tree propagation (worst case ~15 ns
	// across the whole PIMnet, Section VI).
	SyncBankLat sim.Time // bank -> chip control interface round trip
	SyncChipLat sim.Time // chip -> inter-chip switch round trip
	SyncRankLat sim.Time // rank -> inter-rank switch round trip
}

// Host describes the host-CPU path used by the software implementations.
// The three bandwidths are the paper's measured UPMEM numbers (Table VI).
type Host struct {
	PIMToCPUBW  float64 // 4.74 GB/s
	CPUToPIMBW  float64 // 6.68 GB/s
	BroadcastBW float64 // 16.88 GB/s, CPU -> all PIM broadcast
	ChannelBW   float64 // 19.2 GB/s raw DDR channel, the Software(Ideal) rate

	// Baseline-only overheads. Software(Ideal) zeroes all of them.
	LaunchOverhead  sim.Time // per collective API invocation (driver, kernel launch)
	RankSetup       sim.Time // per-rank transfer initiation
	ReduceBW        float64  // host-side elementwise reduce throughput, bytes/s
	TransposeFactor float64  // effective-bandwidth divisor for the rank-interleaved
	// layout reshaping the UPMEM SDK performs on every
	// gather/scatter (>= 1; 1 disables the penalty)
}

// BufferChip describes the DIMM buffer chip assumed by DIMM-Link and
// NDPBridge (and by PIMnet's inter-chip/inter-rank switches).
type BufferChip struct {
	PIMBandwidth float64  // 19.2 GB/s aggregate buffer-chip <-> banks (paper cites [89])
	ReduceBW     float64  // elementwise reduce throughput inside the buffer chip
	HopLatency   sim.Time // bridge/forwarding latency per hop (NDPBridge-style)
}

// CXL describes the CXL-attached PIM variant used by the CXL-PIM backend:
// the channel population is split across Devices PIM devices hanging off a
// switched CXL fabric. Inside a device the PIMnet tiers apply unchanged;
// between devices every byte crosses SwitchHops+1 link traversals of
// LinkLatency each and serializes on the device's full-duplex LinkBandwidth.
// DeviceMemBytes is the per-device capacity — the axis on which CXL-PIM
// relaxes the DIMM systems' sharding constraint (a device holds far more
// than its DPUs' aggregate MRAM). All fields are scalars so System stays
// comparable (the plan-cache key depends on it).
type CXL struct {
	Devices        int      // PIM devices on the fabric; the population splits evenly across them
	LinkLatency    sim.Time // one link traversal (device<->switch or switch<->switch)
	LinkBandwidth  float64  // per-device link rate, bytes/s each direction (full duplex)
	SwitchHops     int      // switches crossed between any device pair
	ReduceBW       float64  // device-controller elementwise reduce throughput, bytes/s
	DeviceMemBytes int64    // CXL-expander capacity per device
}

// DefaultCXL returns the CXL 2.0-class fabric parameters the CXL-PIM
// backend assumes: four devices behind one switch level, x8 PCIe-5 links.
func DefaultCXL() CXL {
	return CXL{
		Devices:        4,
		LinkLatency:    150 * sim.Nanosecond, // load-to-use class CXL.mem latency per traversal
		LinkBandwidth:  32 * GBps,            // x8 PCIe 5.0, per direction
		SwitchHops:     1,
		ReduceBW:       19.2 * GBps, // device-controller reduce, buffer-chip class
		DeviceMemBytes: 256 << 30,   // 256 GiB expander per device
	}
}

// WithDefaults fills zero fields from DefaultCXL, so a System built by hand
// (without going through Default) still yields a usable CXL-PIM model.
func (c CXL) WithDefaults() CXL {
	d := DefaultCXL()
	if c.Devices == 0 {
		c.Devices = d.Devices
	}
	if c.LinkLatency == 0 {
		c.LinkLatency = d.LinkLatency
	}
	if c.LinkBandwidth == 0 {
		c.LinkBandwidth = d.LinkBandwidth
	}
	if c.SwitchHops == 0 {
		c.SwitchHops = d.SwitchHops
	}
	if c.ReduceBW == 0 {
		c.ReduceBW = d.ReduceBW
	}
	if c.DeviceMemBytes == 0 {
		c.DeviceMemBytes = d.DeviceMemBytes
	}
	return c
}

// Validate reports fabric parameters that would make the CXL-PIM model
// meaningless.
func (c CXL) Validate() error {
	switch {
	case c.Devices < 1:
		return fmt.Errorf("config: cxl devices = %d, need >= 1", c.Devices)
	case c.LinkLatency < 0:
		return fmt.Errorf("config: cxl link latency %v < 0", c.LinkLatency)
	case c.LinkBandwidth <= 0:
		return fmt.Errorf("config: cxl link bandwidth %v <= 0", c.LinkBandwidth)
	case c.SwitchHops < 0:
		return fmt.Errorf("config: cxl switch hops %d < 0", c.SwitchHops)
	case c.ReduceBW <= 0:
		return fmt.Errorf("config: cxl reduce bandwidth %v <= 0", c.ReduceBW)
	case c.DeviceMemBytes <= 0:
		return fmt.Errorf("config: cxl device capacity %d <= 0", c.DeviceMemBytes)
	}
	return nil
}

// System is the complete simulated platform.
type System struct {
	Channels     int // memory channels; PIMnet connects DPUs within one channel
	Ranks        int // ranks (DIMMs) per channel
	ChipsPerRank int
	BanksPerChip int

	DPU    DPU
	Net    Net
	Host   Host
	Buffer BufferChip
	// CXL parameterizes the CXL-PIM backend; the DIMM-attached backends
	// ignore it.
	CXL CXL
}

// Default returns the paper's evaluation configuration (Tables II, IV, VI):
// one DDR4-2400 channel, 4 ranks x 8 chips x 8 banks = 256 DPUs.
func Default() System {
	return System{
		Channels:     1,
		Ranks:        4,
		ChipsPerRank: 8,
		BanksPerChip: 8,
		DPU: DPU{
			FreqHz:       350e6,
			Tasklets:     24,
			WRAMBytes:    64 << 10,
			IRAMBytes:    24 << 10,
			MRAMBytes:    64 << 20,
			PipelineOK:   11,
			AddCycles:    1,
			MulCycles:    32, // software-emulated 32-bit multiply (no native multiplier)
			LoadCycles:   1,
			StoreCycles:  1,
			ComputeScale: 1,
			DMABandwidth: 0.63 * GBps, // PrIM-measured sustained MRAM<->WRAM rate
			DMALatency:   sim.Cycles(77, 350e6),
		},
		Net: Net{
			BankChannels:  4,
			BankChannelBW: 0.7 * GBps,
			BankHopLat:    2 * sim.Nanosecond,
			ChipChannels:  2,
			ChipChannelBW: 1.05 * GBps,
			ChipHopLat:    4 * sim.Nanosecond,
			SwitchLat:     2 * sim.Nanosecond,
			RankBusBW:     16.8 * GBps,
			RankBusLat:    6 * sim.Nanosecond,
			SyncBankLat:   4 * sim.Nanosecond,
			SyncChipLat:   10 * sim.Nanosecond,
			SyncRankLat:   15 * sim.Nanosecond, // paper's worst-case propagation
		},
		Host: Host{
			PIMToCPUBW:      4.74 * GBps,
			CPUToPIMBW:      6.68 * GBps,
			BroadcastBW:     16.88 * GBps,
			ChannelBW:       19.2 * GBps,
			LaunchOverhead:  20 * sim.Microsecond,
			RankSetup:       2 * sim.Microsecond,
			ReduceBW:        8 * GBps,
			TransposeFactor: 2.5, // SDK byte-transposition on gather/scatter paths
		},
		Buffer: BufferChip{
			PIMBandwidth: 19.2 * GBps,
			ReduceBW:     19.2 * GBps,
			HopLatency:   20 * sim.Nanosecond,
		},
		CXL: DefaultCXL(),
	}
}

// UPMEMServer returns the real characterized server of Table II: 20 PIM
// DIMMs (2560 DPUs) across multiple channels. Used by the multi-channel
// scaling experiment.
func UPMEMServer() System {
	s := Default()
	s.Channels = 5
	s.Ranks = 4
	return s
}

// BanksPerRank returns DPUs per rank (chips x banks).
func (s System) BanksPerRank() int { return s.ChipsPerRank * s.BanksPerChip }

// DPUsPerChannel returns DPUs within one memory channel.
func (s System) DPUsPerChannel() int { return s.Ranks * s.BanksPerRank() }

// TotalDPUs returns DPUs across all channels.
func (s System) TotalDPUs() int { return s.Channels * s.DPUsPerChannel() }

// PIMMemory returns total PIM-attached memory in bytes.
func (s System) PIMMemory() int64 { return int64(s.TotalDPUs()) * s.DPU.MRAMBytes }

// BankRingBW returns the effective per-bank collective bandwidth on the
// inter-bank ring. With four unidirectional channels (in/out x east/west) a
// bidirectional ring algorithm streams both directions concurrently, so the
// effective per-direction-pair bandwidth is 2 x the channel rate.
func (s System) BankRingBW() float64 {
	pairs := s.Net.BankChannels / 2
	if pairs < 1 {
		pairs = 1
	}
	return float64(pairs) / 2 * 2 * s.Net.BankChannelBW
}

// RankAggregateBW returns the aggregate send+receive PIMnet bandwidth per
// rank when all banks communicate in parallel — the paper's
// "2.8 x 64 = 179.2 GB/s" headline quantity.
func (s System) RankAggregateBW() float64 {
	return float64(s.Net.BankChannels) * s.Net.BankChannelBW * float64(s.BanksPerRank())
}

// CycleTime returns one DPU clock period.
func (s System) CycleTime() sim.Time { return sim.Cycles(1, s.DPU.FreqHz) }

// Validate reports configuration mistakes that would make simulation results
// meaningless (zero counts, non-positive bandwidths, broken scale factors).
func (s System) Validate() error {
	switch {
	case s.Channels < 1:
		return fmt.Errorf("config: channels = %d, need >= 1", s.Channels)
	case s.Ranks < 1:
		return fmt.Errorf("config: ranks = %d, need >= 1", s.Ranks)
	case s.ChipsPerRank < 1:
		return fmt.Errorf("config: chips/rank = %d, need >= 1", s.ChipsPerRank)
	case s.BanksPerChip < 1:
		return fmt.Errorf("config: banks/chip = %d, need >= 1", s.BanksPerChip)
	case s.DPU.FreqHz <= 0:
		return fmt.Errorf("config: DPU frequency %v <= 0", s.DPU.FreqHz)
	case s.DPU.WRAMBytes <= 0:
		return fmt.Errorf("config: WRAM size %d <= 0", s.DPU.WRAMBytes)
	case s.DPU.ComputeScale <= 0:
		return fmt.Errorf("config: compute scale %v <= 0", s.DPU.ComputeScale)
	case s.DPU.DMABandwidth <= 0:
		return fmt.Errorf("config: DMA bandwidth %v <= 0", s.DPU.DMABandwidth)
	case s.Net.BankChannelBW <= 0 || s.Net.ChipChannelBW <= 0 || s.Net.RankBusBW <= 0:
		return fmt.Errorf("config: non-positive PIMnet tier bandwidth")
	case s.Net.BankChannels < 2:
		return fmt.Errorf("config: bank channels = %d, ring needs >= 2", s.Net.BankChannels)
	case s.Host.PIMToCPUBW <= 0 || s.Host.CPUToPIMBW <= 0 || s.Host.BroadcastBW <= 0 || s.Host.ChannelBW <= 0:
		return fmt.Errorf("config: non-positive host bandwidth")
	case s.Host.TransposeFactor < 1:
		return fmt.Errorf("config: transpose factor %v < 1", s.Host.TransposeFactor)
	case s.Buffer.PIMBandwidth <= 0 || s.Buffer.ReduceBW <= 0:
		return fmt.Errorf("config: non-positive buffer-chip bandwidth")
	}
	return nil
}

// WithDPUs returns a copy of s resized (within one channel) to hold exactly n
// DPUs, preserving the packaging hierarchy fill order the paper uses for its
// scalability studies: banks within a chip first (8 -> one chip), then chips
// within a rank (64 -> one rank), then ranks (256 -> four ranks). n must be a
// power of two between 1 and DPUsPerChannel-capacity semantics of the
// default shape.
func (s System) WithDPUs(n int) (System, error) {
	if n < 1 {
		return s, fmt.Errorf("config: %d DPUs requested", n)
	}
	out := s
	switch {
	case n <= s.BanksPerChip:
		out.BanksPerChip = n
		out.ChipsPerRank = 1
		out.Ranks = 1
	case n <= s.BanksPerChip*s.ChipsPerRank:
		if n%s.BanksPerChip != 0 {
			return s, fmt.Errorf("config: %d DPUs not a multiple of %d banks/chip", n, s.BanksPerChip)
		}
		out.ChipsPerRank = n / s.BanksPerChip
		out.Ranks = 1
	default:
		perRank := s.BanksPerChip * s.ChipsPerRank
		if n%perRank != 0 {
			return s, fmt.Errorf("config: %d DPUs not a multiple of %d DPUs/rank", n, perRank)
		}
		out.Ranks = n / perRank
	}
	if out.DPUsPerChannel() != n {
		return s, fmt.Errorf("config: cannot shape %d DPUs with %dx%dx%d hierarchy",
			n, s.Ranks, s.ChipsPerRank, s.BanksPerChip)
	}
	return out, nil
}

// TierRow is one line of the paper's Table IV.
type TierRow struct {
	Tier        string
	Physical    string
	Channels    int
	WidthBits   int
	ChannelGBps float64
	Topology    string
	Router      string
}

// TierTable reproduces Table IV for the current configuration.
func (s System) TierTable() []TierRow {
	return []TierRow{
		{"inter-bank", "Bank I/O bus", s.Net.BankChannels, 16, s.Net.BankChannelBW / GBps, "ring", "PIMnet stop"},
		{"inter-chip", "DQ pins", s.Net.ChipChannels, 4, s.Net.ChipChannelBW / GBps, "crossbar", "Buffer chip"},
		{"inter-rank", "DDR bus", 1, 64, s.Net.RankBusBW / GBps, "bus", "Buffer chip"},
	}
}
