package config

import (
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	s := Default()
	if err := s.Validate(); err != nil {
		t.Fatalf("Default() invalid: %v", err)
	}
	if got := s.DPUsPerChannel(); got != 256 {
		t.Fatalf("DPUs per channel = %d, want 256", got)
	}
	if got := s.BanksPerRank(); got != 64 {
		t.Fatalf("banks per rank = %d, want 64", got)
	}
}

func TestUPMEMServerShape(t *testing.T) {
	s := UPMEMServer()
	if err := s.Validate(); err != nil {
		t.Fatalf("UPMEMServer invalid: %v", err)
	}
	// Table II: 2560 DPUs, 20 ranks.
	if got := s.TotalDPUs(); got != 1280 {
		// 5 channels x 4 ranks x 64 = 1280; the physical server spreads 20
		// ranks over more channels, but per-channel shape is what matters.
		t.Fatalf("total DPUs = %d, want 1280", got)
	}
	if got := s.Channels * s.Ranks; got != 20 {
		t.Fatalf("total ranks = %d, want 20", got)
	}
}

func TestRankAggregateBW(t *testing.T) {
	s := Default()
	// Paper: 2.8 GB/s per bank x 64 banks = 179.2 GB/s per rank.
	got := s.RankAggregateBW()
	want := 179.2 * GBps
	if diff := got - want; diff > 1e6 || diff < -1e6 {
		t.Fatalf("rank aggregate BW = %v, want %v", got, want)
	}
}

func TestBankRingBW(t *testing.T) {
	s := Default()
	// 4 channels -> bidirectional ring -> effective 1.4 GB/s per node pair.
	if got := s.BankRingBW(); got != 1.4*GBps {
		t.Fatalf("bank ring BW = %v, want 1.4 GB/s", got)
	}
}

func TestWithDPUs(t *testing.T) {
	s := Default()
	cases := []struct {
		n                   int
		ranks, chips, banks int
	}{
		{1, 1, 1, 1},
		{4, 1, 1, 4},
		{8, 1, 1, 8},
		{16, 1, 2, 8},
		{64, 1, 8, 8},
		{128, 2, 8, 8},
		{256, 4, 8, 8},
		{512, 8, 8, 8},
	}
	for _, c := range cases {
		got, err := s.WithDPUs(c.n)
		if err != nil {
			t.Fatalf("WithDPUs(%d): %v", c.n, err)
		}
		if got.Ranks != c.ranks || got.ChipsPerRank != c.chips || got.BanksPerChip != c.banks {
			t.Fatalf("WithDPUs(%d) = %dx%dx%d, want %dx%dx%d",
				c.n, got.Ranks, got.ChipsPerRank, got.BanksPerChip, c.ranks, c.chips, c.banks)
		}
		if got.DPUsPerChannel() != c.n {
			t.Fatalf("WithDPUs(%d) holds %d DPUs", c.n, got.DPUsPerChannel())
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("WithDPUs(%d) invalid: %v", c.n, err)
		}
	}
}

func TestWithDPUsErrors(t *testing.T) {
	s := Default()
	for _, n := range []int{0, -4, 12, 100, 300} {
		if _, err := s.WithDPUs(n); err == nil {
			t.Errorf("WithDPUs(%d) succeeded, want error", n)
		}
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := []func(*System){
		func(s *System) { s.Channels = 0 },
		func(s *System) { s.Ranks = 0 },
		func(s *System) { s.ChipsPerRank = 0 },
		func(s *System) { s.BanksPerChip = -1 },
		func(s *System) { s.DPU.FreqHz = 0 },
		func(s *System) { s.DPU.WRAMBytes = 0 },
		func(s *System) { s.DPU.ComputeScale = 0 },
		func(s *System) { s.DPU.DMABandwidth = 0 },
		func(s *System) { s.Net.BankChannelBW = 0 },
		func(s *System) { s.Net.ChipChannelBW = -1 },
		func(s *System) { s.Net.RankBusBW = 0 },
		func(s *System) { s.Net.BankChannels = 1 },
		func(s *System) { s.Host.PIMToCPUBW = 0 },
		func(s *System) { s.Host.ChannelBW = 0 },
		func(s *System) { s.Host.TransposeFactor = 0.5 },
		func(s *System) { s.Buffer.PIMBandwidth = 0 },
	}
	for i, mut := range mutations {
		s := Default()
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d not caught by Validate", i)
		}
	}
}

func TestTierTable(t *testing.T) {
	rows := Default().TierTable()
	if len(rows) != 3 {
		t.Fatalf("tier table has %d rows, want 3", len(rows))
	}
	if rows[0].Tier != "inter-bank" || rows[0].ChannelGBps != 0.7 || rows[0].Channels != 4 {
		t.Fatalf("inter-bank row wrong: %+v", rows[0])
	}
	if rows[1].Tier != "inter-chip" || rows[1].ChannelGBps != 1.05 || rows[1].Channels != 2 {
		t.Fatalf("inter-chip row wrong: %+v", rows[1])
	}
	if rows[2].Tier != "inter-rank" || rows[2].ChannelGBps != 16.8 {
		t.Fatalf("inter-rank row wrong: %+v", rows[2])
	}
}

func TestPIMMemory(t *testing.T) {
	s := Default()
	// 256 DPUs x 64 MB = 16 GB per channel.
	if got := s.PIMMemory(); got != 16<<30 {
		t.Fatalf("PIM memory = %d, want 16 GiB", got)
	}
}

func TestCycleTime(t *testing.T) {
	s := Default()
	ct := s.CycleTime()
	if ct < 2857 || ct > 2858 {
		t.Fatalf("cycle time = %d ps, want ~2857", int64(ct))
	}
}
