# Developer entry points. `make check` is the CI gate: vet plus the full
# test suite under the race detector.

GO ?= go

.PHONY: build test check fuzz bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The CI gate: static analysis and the race-enabled suite must both pass.
check:
	$(GO) vet ./... && $(GO) test -race ./...

# Short fuzz pass over the collective verify interpreter (the recovery
# ladder's correctness oracle); extend -fuzztime for deeper runs.
fuzz:
	$(GO) test -fuzz=FuzzVerify -fuzztime=30s ./internal/collective/

bench:
	$(GO) test -bench=. -benchmem ./...
