# Developer entry points. `make check` is the CI gate: vet plus the full
# test suite under the race detector, then the per-package coverage floor.

GO ?= go

# Packages that must stay above the coverage floor (in percent): the plan
# compiler/cache and the parallel sweep engine are the determinism-critical
# core of the harness.
COVER_PKGS = ./internal/core ./internal/sweep
COVER_FLOOR = 80

.PHONY: build test vet check cover fuzz bench benchcmp profile profile-noc golden trace-smoke serve-smoke cluster-smoke store-smoke crossover-smoke

# Benchmarks gated by the regression check (make benchcmp). Engine covers the
# event queue, Execute covers the plan-replay hot path, Store covers the
# persistent store's cold-miss / warm-hit / write paths on the serving tier,
# Noc covers the flat packet simulator at 256 and 2560 nodes, Cxl covers the
# CXL-PIM backend's decompose + intra-phase replay path.
GATED_BENCH = Engine|Execute|Store|Noc|Cxl
GATED_PKGS = ./internal/sim ./internal/core ./internal/store ./internal/noc ./internal/cxlpim

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# vet also greps for the deprecated root constructors: internal code,
# commands, and examples must build backends through NewBackend/NewPIMnet
# (the wrappers exist only for external callers, plus the one equivalence
# test in options_test.go).
vet:
	$(GO) vet ./...
	@if grep -rnE 'pimnet\.New(Baseline|IdealSoftware|DIMMLink|NDPBridge|FaultyPIMnet)\(' \
			--include='*.go' cmd examples internal 2>/dev/null; then \
		echo "deprecated constructor: use pimnet.NewBackend / pimnet.NewPIMnet (see above)"; exit 1; \
	fi

# The CI gate: static analysis, the race-enabled suite (which includes the
# persistent store's crash/corruption/concurrency battery), and the coverage
# floor must all pass. The benchmark-regression gate runs soft by default
# (benchmarks are noisy on shared machines); set BENCH_STRICT=1 to make a
# regression fail the build.
check:
	$(MAKE) vet && $(GO) test -race ./... && $(MAKE) cover && $(MAKE) trace-smoke && $(MAKE) serve-smoke && $(MAKE) cluster-smoke && $(MAKE) store-smoke && $(MAKE) crossover-smoke
	@if [ "$(BENCH_STRICT)" = "1" ]; then \
		$(MAKE) benchcmp; \
	else \
		$(MAKE) benchcmp || echo "WARNING: benchmark regression (soft gate; set BENCH_STRICT=1 to fail)"; \
	fi

# Per-package coverage floor: fail if any COVER_PKGS package drops below
# COVER_FLOOR percent of statements.
cover:
	@set -e; for pkg in $(COVER_PKGS); do \
		$(GO) test -coverprofile=/tmp/pimnet-cover.out $$pkg > /dev/null; \
		pct=$$($(GO) tool cover -func=/tmp/pimnet-cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
		echo "coverage $$pkg: $$pct% (floor $(COVER_FLOOR)%)"; \
		ok=$$(awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN {print (p >= f) ? 1 : 0}'); \
		if [ "$$ok" != "1" ]; then echo "coverage $$pkg below floor"; exit 1; fi; \
	done; rm -f /tmp/pimnet-cover.out

# Short fuzz pass over the collective verify interpreter (the recovery
# ladder's correctness oracle), the plan-cache key, the persistent store's
# blob codec, the packet NoC's delivery invariants, and the backend-name
# parser's round-trip; extend -fuzztime for deeper runs.
fuzz:
	$(GO) test -fuzz=FuzzVerify -fuzztime=30s ./internal/collective/
	$(GO) test -fuzz=FuzzPlanCacheKey -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzStoreDecode -fuzztime=30s ./internal/store/
	$(GO) test -fuzz=FuzzStoreRoundTrip -fuzztime=30s ./internal/store/
	$(GO) test -fuzz=FuzzNocDelivery -fuzztime=30s ./internal/noc/
	$(GO) test -fuzz=FuzzParseBackendKind -fuzztime=30s .

bench:
	$(GO) test -bench=. -benchmem ./...

# Benchmark-regression gate: run the gated suite, emit bench.json, and
# compare against the committed baseline. Fails on >10% latency regression
# or any allocs/op increase. Refresh the baseline after an intentional
# performance change with:
#	make benchcmp BENCH_BASELINE=BENCH_baseline.json BENCH_EMIT_ONLY=1
BENCH_BASELINE ?= BENCH_baseline.json
benchcmp:
	$(GO) test -run NONE -bench '$(GATED_BENCH)' -benchmem -count=3 $(GATED_PKGS) \
		| $(GO) run ./cmd/benchcmp -emit bench.json
	@if [ "$(BENCH_EMIT_ONLY)" = "1" ]; then \
		cp bench.json $(BENCH_BASELINE); echo "baseline refreshed: $(BENCH_BASELINE)"; \
	else \
		$(GO) run ./cmd/benchcmp -baseline $(BENCH_BASELINE) -current bench.json; \
	fi

# CPU + heap profiles of the 2560-DPU allreduce sweep, the paper-scale
# configuration that dominates pimnetbench wall time. Inspect with
# `go tool pprof cpu.pprof` / `go tool pprof mem.pprof`.
profile: build
	$(GO) run ./cmd/pimnetsim -sweep -sweep-dpus 2560 -sweep-bytes 32768 \
		-pattern allreduce -cpuprofile cpu.pprof -memprofile mem.pprof

# CPU + heap profiles of the packet-level NoC adversarial sweep at 2560
# DPUs — the flat packet core's hot loop.
profile-noc: build
	$(GO) run ./cmd/pimnetbench -fig noc -cpuprofile noc-cpu.pprof -memprofile noc-mem.pprof

# Regenerate the golden corpora (compiled-plan traces and the NoC packet
# simulator's result corpus) after an intentional change; review the diff
# before committing.
golden:
	$(GO) test ./internal/core -run TestGoldenTraces -update
	$(GO) test ./internal/noc -run TestNocGolden -update
	$(GO) test ./internal/cxlpim -run TestGoldenResults -update

# Serve smoke test: boot pimnetd on an ephemeral port, hit every endpoint,
# and prove the SIGTERM drain exits 0 — the daemon's end-to-end contract.
serve-smoke:
	sh scripts/serve_smoke.sh

# Cluster smoke test: a coordinator over two real workers must serve sweeps
# byte-identical to a single node — including while one worker is killed
# mid-sweep (DESIGN.md §13).
cluster-smoke:
	sh scripts/cluster_smoke.sh

# Store smoke test: a pimnetd restarted on its -store-dir must answer the
# same sweep byte-identically with zero plan compiles — every point a store
# read (DESIGN.md §14).
store-smoke:
	sh scripts/store_smoke.sh

# Crossover smoke test: the six-backend DIMM-vs-CXL study on a reduced grid
# must carry every backend and render byte-identically at any worker count.
crossover-smoke:
	sh scripts/crossover_smoke.sh

# Trace smoke test: a traced 256-DPU AllReduce must produce schema-valid
# Chrome trace_event JSON (the Perfetto-loadability contract of -trace-out).
trace-smoke:
	$(GO) run ./cmd/pimnetsim -trace-out /tmp/pimnet-trace-smoke.json \
		-pattern allreduce -dpus 256 > /dev/null
	$(GO) run ./cmd/tracecheck /tmp/pimnet-trace-smoke.json
	@rm -f /tmp/pimnet-trace-smoke.json
