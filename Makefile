# Developer entry points. `make check` is the CI gate: vet plus the full
# test suite under the race detector, then the per-package coverage floor.

GO ?= go

# Packages that must stay above the coverage floor (in percent): the plan
# compiler/cache and the parallel sweep engine are the determinism-critical
# core of the harness.
COVER_PKGS = ./internal/core ./internal/sweep
COVER_FLOOR = 80

.PHONY: build test check cover fuzz bench golden

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The CI gate: static analysis, the race-enabled suite, and the coverage
# floor must all pass.
check:
	$(GO) vet ./... && $(GO) test -race ./... && $(MAKE) cover

# Per-package coverage floor: fail if any COVER_PKGS package drops below
# COVER_FLOOR percent of statements.
cover:
	@set -e; for pkg in $(COVER_PKGS); do \
		$(GO) test -coverprofile=/tmp/pimnet-cover.out $$pkg > /dev/null; \
		pct=$$($(GO) tool cover -func=/tmp/pimnet-cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
		echo "coverage $$pkg: $$pct% (floor $(COVER_FLOOR)%)"; \
		ok=$$(awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN {print (p >= f) ? 1 : 0}'); \
		if [ "$$ok" != "1" ]; then echo "coverage $$pkg below floor"; exit 1; fi; \
	done; rm -f /tmp/pimnet-cover.out

# Short fuzz pass over the collective verify interpreter (the recovery
# ladder's correctness oracle) and the plan-cache key; extend -fuzztime for
# deeper runs.
fuzz:
	$(GO) test -fuzz=FuzzVerify -fuzztime=30s ./internal/collective/
	$(GO) test -fuzz=FuzzPlanCacheKey -fuzztime=30s ./internal/core/

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the golden-trace corpus after an intentional compiler or
# executor change; review the diff before committing.
golden:
	$(GO) test ./internal/core -run TestGoldenTraces -update
