package pimnet_test

import (
	"fmt"
	"log"

	"pimnet"
)

// Example reproduces the paper's headline comparison: one 32 KiB-per-DPU
// AllReduce over a full 256-DPU memory channel, on the commodity
// host-relayed path and on PIMnet.
func Example() {
	sys, err := pimnet.DefaultSystem().WithDPUs(256)
	if err != nil {
		log.Fatal(err)
	}
	req := pimnet.Request{
		Pattern: pimnet.AllReduce, Op: pimnet.Sum,
		BytesPerNode: 32 << 10, ElemSize: 4, Nodes: 256,
	}
	baseline, _ := pimnet.NewBackend(pimnet.Baseline, sys)
	p, _ := pimnet.NewPIMnet(sys)
	rb, err := baseline.Collective(req)
	if err != nil {
		log.Fatal(err)
	}
	rp, err := p.Collective(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline %v\n", rb.Time)
	fmt.Printf("pimnet   %v\n", rp.Time)
	fmt.Printf("speedup  %.1fx\n", float64(rb.Time)/float64(rp.Time))
	// Output:
	// baseline 5.51ms
	// pimnet   111.33us
	// speedup  49.5x
}
