package pimnet_test

import (
	"testing"

	"pimnet"
)

// FuzzParseBackendKind: any string either parses to a kind whose canonical
// String() parses back to the same kind, or is rejected with an error —
// never a panic, and never an accept/canonical round-trip mismatch. Run
// with `go test -fuzz=FuzzParseBackendKind .`.
func FuzzParseBackendKind(f *testing.F) {
	for _, s := range []string{
		"baseline", "b", "ideal", "Software(Ideal)", "ndpbridge", "n",
		"dimmlink", "DIMM-Link", "d", "pimnet", "P", "cxlpim", "CXL-PIM",
		"cxl", "c", " pimnet ", "gpu", "", "cxlpimm",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		kind, err := pimnet.ParseBackendKind(s)
		if err != nil {
			return
		}
		back, err := pimnet.ParseBackendKind(kind.String())
		if err != nil {
			t.Fatalf("canonical name %q of accepted input %q does not parse: %v", kind, s, err)
		}
		if back != kind {
			t.Fatalf("round trip moved %q: %v -> %v", s, kind, back)
		}
	})
}
